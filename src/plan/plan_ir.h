#ifndef STRQ_PLAN_PLAN_IR_H_
#define STRQ_PLAN_PLAN_IR_H_

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "logic/ast.h"

namespace strq {
namespace plan {

// -------------------------------------------------------------------------
// Logical plan IR
// -------------------------------------------------------------------------
//
// The planner works on a small IR between the AST and the engines:
//
//   * kAnd/kOr are n-ary (the AST's binary nesting is flattened), so the
//     rewrite rules see whole conjunct/disjunct lists and the cost model
//     can pick a fold order;
//   * every node carries its free-variable set, the input to miniscoping
//     and to the parameter-preservation gates of the restricted-quantifier
//     ranges (kPrefixDom/kLenDom ranges are parameterized by the free
//     variables of the body — any rewrite that changes a body's free set
//     changes the range's meaning and must be gated, see rules.cc);
//   * nodes are hash-consed in a PlanStore, so structurally identical
//     subplans are one node (common-subplan sharing) and equality tests
//     during rewriting are pointer comparisons;
//   * atoms stay AST subtrees (kLeaf wraps the kTrue/kFalse/kPred/kRelation
//     formula); the engines keep full ownership of atom compilation.
//
// kImplies/kIff are expanded during lowering, so the rules only ever see
// And/Or/Not/Quant/Leaf — the same shapes the automata engine folds over.

enum class NodeKind { kLeaf, kNot, kAnd, kOr, kQuant };

struct PlanNode {
  NodeKind kind;
  // kLeaf: the atom (kTrue/kFalse/kPred/kRelation formula).
  FormulaPtr leaf;
  // kNot/kQuant: children[0]; kAnd/kOr: two or more children, in fold order.
  std::vector<const PlanNode*> children;
  // kQuant only.
  bool is_forall = false;
  std::string var;
  QuantRange range = QuantRange::kAll;

  // Explicit free-variable set (computed once at construction).
  std::set<std::string> free_vars;

  // Hash-consing identity within the owning PlanStore.
  int id = 0;
  uint64_t hash = 0;

  // Estimated states of the automaton this subplan compiles to; written by
  // CostModel::Annotate (0 until annotated). Mutable cost-model scratch —
  // the logical content above never changes after interning.
  mutable double est_states = 0.0;
};

// Hash-consing arena: structurally identical nodes are interned to one
// PlanNode, so DAG sharing is free and node equality is pointer equality.
// Nodes live as long as the store.
class PlanStore {
 public:
  PlanStore() = default;
  PlanStore(const PlanStore&) = delete;
  PlanStore& operator=(const PlanStore&) = delete;

  const PlanNode* True();
  const PlanNode* False();
  // `atom` must be kTrue/kFalse/kPred/kRelation.
  const PlanNode* Leaf(FormulaPtr atom);
  const PlanNode* Not(const PlanNode* a);
  // Flattens nested kAnd (resp. kOr) children, returns the single child for
  // singleton lists and True()/False() for empty ones.
  const PlanNode* And(std::vector<const PlanNode*> children);
  const PlanNode* Or(std::vector<const PlanNode*> children);
  const PlanNode* Quant(bool is_forall, std::string var, QuantRange range,
                        const PlanNode* body);

  // Number of intern calls that found an existing node — the shared-subplan
  // count reported as plan.shared_subplans.
  int64_t shared_hits() const { return shared_hits_; }
  size_t size() const { return nodes_.size(); }

 private:
  const PlanNode* Intern(PlanNode n);

  std::vector<std::unique_ptr<PlanNode>> nodes_;
  std::unordered_map<uint64_t, std::vector<const PlanNode*>> table_;
  int64_t shared_hits_ = 0;
};

// AST → IR. Expands kImplies (¬a ∨ b) and kIff ((¬a ∨ b) ∧ (¬b ∨ a)),
// flattens binary And/Or chains into n-ary nodes.
const PlanNode* Lower(PlanStore& store, const FormulaPtr& f);

// IR → AST. n-ary nodes left-fold back to binary in child order, so the
// automata engine's bottom-up compile performs products exactly in the
// order the planner chose.
FormulaPtr Render(const PlanNode* n);

// As above, additionally recording every binary And/Or fold node produced
// from an n-ary plan node into `parallel_folds` (when non-null). A formula
// in that set marks a spine whose flattened children are independent
// subplans: an engine may compile them concurrently and fold the results in
// the planner's child order.
FormulaPtr Render(const PlanNode* n,
                  std::unordered_set<const Formula*>* parallel_folds);

// Indented tree rendering with per-node cost estimates (when annotated);
// what `explain` prints as the plan phase.
std::string Pretty(const PlanNode* n);

}  // namespace plan
}  // namespace strq

#endif  // STRQ_PLAN_PLAN_IR_H_
