#ifndef STRQ_SERVE_SERVER_H_
#define STRQ_SERVE_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "base/budget.h"
#include "base/status.h"
#include "eval/automata_eval.h"
#include "incr/incr.h"
#include "logic/ast.h"
#include "mta/atom_cache.h"
#include "plan/planner.h"
#include "relational/snapshot.h"
#include "serve/inflight.h"
#include "shard/coordinator.h"
#include "shard/sharded_db.h"

namespace strq {
namespace serve {

class Session;

// How much of the answer a request wants. kMaterialize is the classic
// full-relation path (Query/Compile, deduped across sessions); the three
// early-exit modes route through the lazy on-the-fly product when the
// planner advises it, so a request touches only the product states its
// traversal explores and the per-request deadline interrupts at
// state-creation granularity.
enum class QueryMode {
  kMaterialize,
  kContains,
  kExistsWitness,
  kTopK,
};

// Admission control and per-session resource limits for one QueryServer.
struct ServerOptions {
  // Max requests evaluating at once; 0 = unlimited. Excess requests queue.
  int max_concurrent = 0;
  // Max requests waiting for a slot; -1 = unbounded queue, 0 = reject
  // immediately when saturated. Rejects are ResourceExhausted and counted
  // as serve.admission_rejects.
  int max_queued = -1;
  // Planner options for the shared planner (plan cache included).
  plan::PlannerOptions planner;
  // Incremental maintenance (src/incr): subscribe an IncrementalIndex to
  // the commit stream and serve table tries, domain automata and answer
  // automata by patching across revisions instead of recompiling. Answers
  // and canonical store ids are identical either way; disable to get the
  // recompile-everything baseline (bench_ablation's update-stream rows).
  bool enable_incremental = true;
  incr::Options incremental;
  // Horizontal partitioning (src/shard): values >= 2 hash-partition every
  // relation across that many in-process shards, each with its own
  // store/cache/planner/incremental stack. Distributable queries compile
  // per-shard and merge through the interned Union; everything else — and
  // every query when num_shards <= 1 — runs on the merge stack exactly as
  // today. Answers, enumeration order and canonical merge-store ids are
  // shard-count-invariant.
  int num_shards = 1;
  // Track hashed to place a tuple (see shard::ShardOptions).
  int shard_partition_track = 0;
};

// Per-session request budget template. Each request materializes it into a
// base/budget.h RequestBudget with an absolute deadline; zero fields mean
// "no session limit" (library defaults apply).
struct SessionBudget {
  // Wall-clock limit per request; kernels poll it at worklist granularity
  // and abort with DEADLINE_EXCEEDED.
  std::chrono::nanoseconds timeout{0};
  // Ceiling on materialized product states (kDefaultMaxProductStates
  // becomes this per-request knob); exceeding it is RESOURCE_EXHAUSTED.
  int max_product_states = 0;
  // Ceiling on enumerated answer tuples (caps the max_tuples argument).
  size_t max_answer_tuples = 0;
};

// A long-lived query server: one versioned database, one shared
// AtomCache/AutomatonStore/Planner, many concurrent sessions.
//
//  * Sessions evaluate against PINNED MVCC snapshots (relational/snapshot.h):
//    writers commit through versioned_db() without ever blocking readers,
//    and a session's answers are stable until it Refresh()es.
//  * All sessions compile into one cache stack, so atoms, patterns, table
//    tries, store products and plans are shared across sessions — canonical
//    store ids are identical no matter how many sessions race (the store
//    interns by language).
//  * Structurally identical queries against the same revision that arrive
//    while one of them is still compiling are collapsed to a single
//    compilation (single-flight keyed on the planner's plan-cache key, with
//    a StructurallyEqual guard against hash collisions); the waiters share
//    the leader's answer automaton and count as serve.inflight_dedup_hits.
//  * Admission control (ServerOptions) bounds concurrent evaluation;
//    rejected requests fail fast with RESOURCE_EXHAUSTED.
//
// Thread-safe. Sessions themselves are single-client objects: open one per
// connection/thread; any number of them may run requests concurrently.
class QueryServer {
 public:
  explicit QueryServer(Alphabet alphabet, ServerOptions options = {});
  explicit QueryServer(Database initial, ServerOptions options = {});
  ~QueryServer();
  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  const Alphabet& alphabet() const { return db_.alphabet(); }

  // The write side: commits publish a new head revision; existing sessions
  // keep reading their pinned snapshots.
  VersionedDatabase& versioned_db() { return db_; }
  const VersionedDatabase& versioned_db() const { return db_; }

  const std::shared_ptr<AtomCache>& atom_cache() const { return cache_; }
  const std::shared_ptr<plan::Planner>& planner() const { return planner_; }

  // The incremental-maintenance index subscribed to this server's commit
  // stream, or null when ServerOptions::enable_incremental is off. Also a
  // DomainProvider: wire it into a RestrictedEvaluator (Engine B) reading
  // the head snapshot to get incrementally-maintained candidate sets.
  const std::shared_ptr<incr::IncrementalIndex>& incremental() const {
    return incr_;
  }

  // The hash partition behind this server, or null when num_shards <= 1.
  // Commits made through CommitDeltas/versioned_db() fan to the owning
  // shards automatically (the commit hook routes them).
  const shard::ShardedDatabase* sharded() const { return shards_.get(); }

  // Applies a batch of tuple writes as ONE commit (one revision edge) and
  // publishes the delta to the subscribed index; dead-snapshot cache
  // entries are reclaimed on the same edge. Open sessions keep their pinned
  // snapshots until they Refresh().
  Result<CommitDelta> CommitDeltas(const std::vector<TupleDelta>& ops);

  // Opens a session pinned at the current head revision.
  std::unique_ptr<Session> OpenSession();

  // Drops revision-keyed cache entries (table tries, adom/prefix-domain
  // automata) whose revision is neither the head nor pinned by any live
  // snapshot. Returns the number of entries dropped. Cheap to call after
  // every commit or on a timer; entries for live snapshots are never
  // touched. (Plan-cache entries for dead revisions are retained — their
  // keys are opaque hashes — but are never hit again; ClearCache() on the
  // planner is the blunt instrument if needed.)
  size_t ReclaimDeadSnapshots();

  struct Stats {
    int64_t sessions = 0;
    int64_t requests = 0;
    int64_t admission_rejects = 0;
    int64_t inflight_dedup_hits = 0;
    int64_t budget_rejects = 0;
    int64_t entries_reclaimed = 0;
    // Distinct revisions currently pinned by live snapshots.
    int64_t live_pins = 0;
  };
  Stats stats() const;

 private:
  friend class Session;

  // RAII admission slot. Destroying it frees the slot and wakes a waiter.
  class Ticket {
   public:
    Ticket() = default;
    explicit Ticket(QueryServer* server) : server_(server) {}
    Ticket(Ticket&& other) noexcept : server_(other.server_) {
      other.server_ = nullptr;
    }
    Ticket& operator=(Ticket&& other) noexcept {
      Release();
      server_ = other.server_;
      other.server_ = nullptr;
      return *this;
    }
    ~Ticket() { Release(); }

   private:
    void Release();
    QueryServer* server_ = nullptr;
  };

  // Builds the incremental index (when enabled) and registers the commit
  // hook that feeds it and reclaims dead-snapshot cache entries.
  void InstallCommitHook();

  // Blocks until a slot frees up (or `deadline`, when the request has one;
  // a timed-out wait is DEADLINE_EXCEEDED). A full queue rejects
  // immediately with RESOURCE_EXHAUSTED.
  Result<Ticket> Admit(const RequestBudget& budget);

  // Compile `f` for `session`, collapsing structurally identical in-flight
  // compilations across sessions (keyed on the merge snapshot's revision).
  // The single-flight leader routes distributable queries through the
  // coordinator when the server is sharded (`allow_shard_route`; the
  // decider paths pass false after routing themselves), the merge stack
  // otherwise — the compiled automaton is identical either way.
  Result<TrackAutomaton> CompileShared(Session& session, const FormulaPtr& f,
                                       bool allow_shard_route = true);

  struct CompiledEntry {
    FormulaPtr formula;  // collision guard for the hashed key
    Result<TrackAutomaton> result = InternalError("unset");
  };

  ServerOptions options_;
  VersionedDatabase db_;
  std::shared_ptr<AtomCache> cache_;
  std::shared_ptr<plan::Planner> planner_;
  std::shared_ptr<incr::IncrementalIndex> incr_;
  std::unique_ptr<shard::ShardedDatabase> shards_;
  std::unique_ptr<shard::Coordinator> coordinator_;

  SingleFlight<uint64_t, CompiledEntry> inflight_;

  std::mutex adm_mu_;
  std::condition_variable adm_cv_;
  int active_ = 0;
  int queued_ = 0;

  std::atomic<int64_t> sessions_{0};
  std::atomic<int64_t> requests_{0};
  std::atomic<int64_t> admission_rejects_{0};
  std::atomic<int64_t> dedup_hits_{0};
  std::atomic<int64_t> budget_rejects_{0};
  std::atomic<int64_t> entries_reclaimed_{0};
};

// One client's connection to the server: a pinned snapshot plus the budget
// applied to its requests. NOT thread-safe — one session per client thread;
// concurrency comes from many sessions sharing the server.
class Session {
 public:
  ~Session() = default;
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  // The pinned view this session reads. Stable across writer commits. On a
  // sharded server this is the merge snapshot of a COHERENT cross-shard
  // vector: the per-shard snapshots pinned alongside it (shard_snapshots())
  // correspond to exactly this merge revision, so routed and fallback
  // evaluation read the same world.
  const DbSnapshot& snapshot() const { return snapshot_; }
  int64_t revision() const { return snapshot_.revision(); }

  // The per-shard snapshots pinned with snapshot(); empty when the server
  // is unsharded.
  const std::vector<DbSnapshot>& shard_snapshots() const {
    return shard_snaps_;
  }

  // Re-pins at the current head revision (read-your-writes after a commit
  // made through versioned_db()).
  void Refresh();

  // Budget template applied to every subsequent request of this session.
  void set_budget(SessionBudget budget) { budget_ = budget; }
  const SessionBudget& budget() const { return budget_; }

  // Parallel compilation of independent subplans within this session's
  // requests (see AutomataEvaluator::set_parallel_options).
  void set_parallel_options(ParallelOptions options);

  // Evaluates an open query against the pinned snapshot: the set of
  // satisfying tuples (columns ordered by AutomataEvaluator::FreeVarOrder),
  // or UnsafeError if infinite. `max_tuples` bounds materialization; the
  // session budget's max_answer_tuples caps it further.
  Result<Relation> Query(const FormulaPtr& f, size_t max_tuples = 1000000);

  // Evaluates a sentence against the pinned snapshot.
  Result<bool> QuerySentence(const FormulaPtr& f);

  // Compiles φ to its answer automaton (deduped across sessions).
  Result<TrackAutomaton> Compile(const FormulaPtr& f);

  // Early-exit query modes (QueryMode::kContains / kExistsWitness / kTopK)
  // against the pinned snapshot. Answers are identical to filtering the
  // materialized Query() result; the lazy path (Planner::AdviseLazy) just
  // gets there without building the product. Lazy state caches are
  // per-request here — cross-session sharing happens at the component
  // level (leaf automata live in the shared AtomCache/store), so canonical
  // store ids never depend on which sessions ran which modes.
  Result<bool> Contains(const FormulaPtr& f,
                        const std::vector<std::string>& tuple);
  Result<std::optional<std::vector<std::string>>> ExistsWitness(
      const FormulaPtr& f);
  Result<std::vector<std::vector<std::string>>> TopK(const FormulaPtr& f,
                                                     size_t k,
                                                     int max_len = 64);

  // State-safety of φ on the pinned snapshot.
  Result<bool> IsSafe(const FormulaPtr& f);

  // The evaluator bound to the pinned snapshot, for callers needing the
  // full engine surface (EXPLAIN, pattern compilation). Re-bound on
  // Refresh(); do not hold across it.
  AutomataEvaluator& evaluator() { return *eval_; }

 private:
  friend class QueryServer;
  explicit Session(QueryServer* server);

  // Materializes the session budget into an absolute per-request budget.
  RequestBudget MakeBudget() const;

  // Admission + budget installation + serve.* accounting around one
  // request body.
  template <typename Fn>
  auto Serve(Fn&& body) -> decltype(body());

  // Should this request compile per-shard and merge? True iff the server is
  // sharded and the formula is ∪-distributable; counts shard.fallbacks for
  // the sharded-but-not-distributable case.
  bool ShardRoutable(const FormulaPtr& f) const;

  QueryServer* server_;
  DbSnapshot snapshot_;
  std::unique_ptr<AutomataEvaluator> eval_;
  // Per-shard evaluators bound to shard_snaps_ (sharded servers only),
  // rebuilt on Refresh() together with eval_.
  std::vector<DbSnapshot> shard_snaps_;
  std::vector<std::unique_ptr<AutomataEvaluator>> shard_evals_;
  std::vector<AutomataEvaluator*> shard_eval_ptrs_;
  SessionBudget budget_;
  ParallelOptions parallel_{1};
};

}  // namespace serve
}  // namespace strq

#endif  // STRQ_SERVE_SERVER_H_
