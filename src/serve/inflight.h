#ifndef STRQ_SERVE_INFLIGHT_H_
#define STRQ_SERVE_INFLIGHT_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <utility>

namespace strq {
namespace serve {

// Generic single-flight: concurrent Do() calls with the same key are
// collapsed into one execution of `compute` — the first caller in becomes
// the LEADER and runs it; everyone else WAITS and receives the leader's
// (immutable, shared) value. The entry is retired as soon as the leader
// publishes, so a later call with the same key computes afresh: this is
// in-flight deduplication, not a cache — pair it with one (the planner's
// plan cache, the store's computed table) for cross-request reuse.
//
// The value is handed to waiters as shared_ptr<const V>; whether a FAILED
// leader result should be shared is the caller's policy (a deadline abort
// is specific to the leader's budget, a parse error is not), which is why
// Outcome reports leader/waiter rather than hiding it.
template <typename K, typename V>
class SingleFlight {
 public:
  struct Outcome {
    std::shared_ptr<const V> value;
    // True iff this caller ran `compute` itself.
    bool leader = false;
  };

  template <typename Fn>
  Outcome Do(const K& key, Fn&& compute) {
    std::shared_ptr<Entry> entry;
    {
      std::unique_lock<std::mutex> lock(mu_);
      auto it = entries_.find(key);
      if (it != entries_.end()) {
        entry = it->second;
        ++total_waits_;
        entry->cv.wait(lock, [&entry] { return entry->done; });
        return Outcome{entry->value, false};
      }
      entry = std::make_shared<Entry>();
      entries_.emplace(key, entry);
    }
    std::shared_ptr<const V> value =
        std::make_shared<const V>(compute());
    {
      std::lock_guard<std::mutex> lock(mu_);
      entry->value = value;
      entry->done = true;
      entries_.erase(key);
    }
    entry->cv.notify_all();
    return Outcome{std::move(value), true};
  }

  // Total number of calls that waited on another caller's execution, ever.
  // Deterministic tests drive concurrency to a known interleaving and
  // assert on this.
  int64_t total_waits() const {
    std::lock_guard<std::mutex> lock(mu_);
    return total_waits_;
  }

  // Keys currently being computed.
  size_t inflight_size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
  }

 private:
  struct Entry {
    std::condition_variable cv;
    std::shared_ptr<const V> value;
    bool done = false;
  };

  mutable std::mutex mu_;
  std::map<K, std::shared_ptr<Entry>> entries_;
  int64_t total_waits_ = 0;
};

}  // namespace serve
}  // namespace strq

#endif  // STRQ_SERVE_INFLIGHT_H_
