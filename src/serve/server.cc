#include "serve/server.h"

#include <chrono>

#include "obs/trace.h"

namespace strq {
namespace serve {

namespace {

int64_t LatencyNsSince(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - since)
      .count();
}

}  // namespace

QueryServer::QueryServer(Alphabet alphabet, ServerOptions options)
    : options_(options),
      db_(std::move(alphabet)),
      cache_(std::make_shared<AtomCache>(db_.alphabet())),
      planner_(std::make_shared<plan::Planner>(options.planner)) {
  InstallCommitHook();
}

QueryServer::QueryServer(Database initial, ServerOptions options)
    : options_(options),
      db_(std::move(initial)),
      cache_(std::make_shared<AtomCache>(db_.alphabet())),
      planner_(std::make_shared<plan::Planner>(options.planner)) {
  InstallCommitHook();
}

void QueryServer::InstallCommitHook() {
  if (options_.enable_incremental) {
    incr_ = std::make_shared<incr::IncrementalIndex>(
        &db_, cache_, planner_, options_.incremental);
  }
  if (options_.num_shards > 1) {
    shard::ShardOptions so;
    so.num_shards = options_.num_shards;
    so.partition_track = options_.shard_partition_track;
    so.enable_incremental = options_.enable_incremental;
    so.incremental = options_.incremental;
    so.planner = options_.planner;
    shards_ = std::make_unique<shard::ShardedDatabase>(&db_, so);
    coordinator_ = std::make_unique<shard::Coordinator>(cache_, planner_);
  }
  // Every commit (whatever API produced it) publishes its delta to the
  // subscribed index, fans it to the owning shards, and reclaims cache
  // entries for snapshots the commit just orphaned. The hook runs under the
  // writer lock, so both consumers see commits in revision order.
  db_.SetCommitHook([this](const CommitDelta& delta) {
    if (incr_ != nullptr) incr_->OnCommit(delta);
    if (shards_ != nullptr) shards_->OnMergeCommit(delta);
    ReclaimDeadSnapshots();
  });
}

QueryServer::~QueryServer() { db_.SetCommitHook(nullptr); }

Result<CommitDelta> QueryServer::CommitDeltas(
    const std::vector<TupleDelta>& ops) {
  return db_.ApplyDeltas(ops);
}

std::unique_ptr<Session> QueryServer::OpenSession() {
  sessions_.fetch_add(1, std::memory_order_relaxed);
  obs::Count(obs::kServeSessions);
  return std::unique_ptr<Session>(new Session(this));
}

void QueryServer::Ticket::Release() {
  if (server_ == nullptr) return;
  {
    std::lock_guard<std::mutex> lock(server_->adm_mu_);
    --server_->active_;
  }
  server_->adm_cv_.notify_one();
  server_ = nullptr;
}

Result<QueryServer::Ticket> QueryServer::Admit(const RequestBudget& budget) {
  if (options_.max_concurrent <= 0) return Ticket(nullptr);
  std::unique_lock<std::mutex> lock(adm_mu_);
  if (active_ < options_.max_concurrent) {
    ++active_;
    return Ticket(this);
  }
  if (options_.max_queued >= 0 && queued_ >= options_.max_queued) {
    admission_rejects_.fetch_add(1, std::memory_order_relaxed);
    obs::Count(obs::kServeAdmissionRejects);
    return ResourceExhaustedError("admission queue full");
  }
  ++queued_;
  bool admitted;
  if (budget.has_deadline) {
    admitted = adm_cv_.wait_until(lock, budget.deadline, [this] {
      return active_ < options_.max_concurrent;
    });
  } else {
    adm_cv_.wait(lock,
                 [this] { return active_ < options_.max_concurrent; });
    admitted = true;
  }
  --queued_;
  if (!admitted) {
    admission_rejects_.fetch_add(1, std::memory_order_relaxed);
    obs::Count(obs::kServeAdmissionRejects);
    return DeadlineExceededError("deadline expired waiting for admission");
  }
  ++active_;
  return Ticket(this);
}

Result<TrackAutomaton> QueryServer::CompileShared(Session& session,
                                                  const FormulaPtr& f,
                                                  bool allow_shard_route) {
  AutomataEvaluator& eval = *session.eval_;
  const Database* db = &session.snapshot_.db();
  // The plan-cache key already mixes the database revision, so structurally
  // identical queries only collapse when they target the same snapshot.
  uint64_t key = planner_->QueryKey(f, db);
  auto outcome = inflight_.Do(key, [&] {
    CompiledEntry entry;
    entry.formula = f;
    if (allow_shard_route && session.ShardRoutable(f)) {
      // Sharded: compile on every shard and fold with the merge store's
      // interned Union. Canonical minimization makes the result the same
      // automaton — same merge-store id — the merge stack would compile.
      entry.result = coordinator_->CompileMerged(
          f, session.shard_eval_ptrs_, db, session.parallel_);
    } else {
      // Merge stack: the leader routes through the incremental index — the
      // answer is patched forward from the last maintained revision when
      // the delta window allows, recompiled (over patched tries) otherwise.
      entry.result = incr_ != nullptr ? incr_->CompileAnswer(eval, f, *db)
                                      : eval.Compile(f);
    }
    return entry;
  });
  if (outcome.leader) return outcome.value->result;
  // Waiter. Two reasons not to take the shared value: the hashed key
  // collided with a different formula, or the leader died of its OWN
  // budget (deadline/state ceiling) — a verdict that says nothing about
  // what this request's budget allows. Both fall back to a private compile
  // (which still hits the plan cache and the store's computed table, so
  // little work is repeated).
  if (!StructurallyEqual(outcome.value->formula, f)) {
    return eval.Compile(f);
  }
  const Result<TrackAutomaton>& shared = outcome.value->result;
  if (!shared.ok() &&
      (shared.status().code() == StatusCode::kDeadlineExceeded ||
       shared.status().code() == StatusCode::kResourceExhausted)) {
    return eval.Compile(f);
  }
  dedup_hits_.fetch_add(1, std::memory_order_relaxed);
  obs::Count(obs::kServeInflightDedupHits);
  return shared;
}

size_t QueryServer::ReclaimDeadSnapshots() {
  size_t evicted = cache_->EvictRevisionEntries(
      [this](int64_t rev) { return db_.IsLive(rev); });
  if (evicted > 0) {
    entries_reclaimed_.fetch_add(static_cast<int64_t>(evicted),
                                 std::memory_order_relaxed);
    obs::Count(obs::kServeSnapshotsReclaimed,
               static_cast<int64_t>(evicted));
    obs::Count(obs::kSnapshotReclaimed, static_cast<int64_t>(evicted));
  }
  return evicted;
}

QueryServer::Stats QueryServer::stats() const {
  Stats s;
  s.sessions = sessions_.load(std::memory_order_relaxed);
  s.requests = requests_.load(std::memory_order_relaxed);
  s.admission_rejects = admission_rejects_.load(std::memory_order_relaxed);
  s.inflight_dedup_hits = dedup_hits_.load(std::memory_order_relaxed);
  s.budget_rejects = budget_rejects_.load(std::memory_order_relaxed);
  s.entries_reclaimed = entries_reclaimed_.load(std::memory_order_relaxed);
  s.live_pins = static_cast<int64_t>(db_.pinned_revisions());
  return s;
}

Session::Session(QueryServer* server) : server_(server) {
  Refresh();
}

void Session::Refresh() {
  shard_snaps_.clear();
  shard_evals_.clear();
  shard_eval_ptrs_.clear();
  if (server_->shards_ != nullptr) {
    // Pin a coherent cross-shard vector: the merge snapshot of the last
    // completed fan-out plus one snapshot per shard at that same point.
    shard::ShardedDatabase::SnapshotVector v = server_->shards_->Snapshots();
    snapshot_ = std::move(v.merge);
    shard_snaps_ = std::move(v.shards);
  } else {
    snapshot_ = server_->versioned_db().Snapshot();
  }
  eval_ = std::make_unique<AutomataEvaluator>(
      &snapshot_.db(), server_->atom_cache(), server_->planner());
  eval_->set_parallel_options(parallel_);
  // Relation/adom/prefix automata come from the incremental index (which
  // patches across revisions) when the server maintains one.
  eval_->set_trie_provider(server_->incremental());
  for (size_t i = 0; i < shard_snaps_.size(); ++i) {
    const shard::ShardedDatabase::Stack& stack =
        server_->shards_->stack(static_cast<int>(i));
    auto shard_eval = std::make_unique<AutomataEvaluator>(
        &shard_snaps_[i].db(), stack.cache, stack.planner);
    shard_eval->set_parallel_options(parallel_);
    shard_eval->set_trie_provider(stack.incr);
    shard_eval_ptrs_.push_back(shard_eval.get());
    shard_evals_.push_back(std::move(shard_eval));
  }
}

void Session::set_parallel_options(ParallelOptions options) {
  parallel_ = options;
  eval_->set_parallel_options(options);
  for (auto& shard_eval : shard_evals_) {
    shard_eval->set_parallel_options(options);
  }
}

bool Session::ShardRoutable(const FormulaPtr& f) const {
  if (shard_evals_.empty()) return false;
  if (shard::Coordinator::Distributable(f)) return true;
  obs::Count(obs::kShardFallbacks);
  return false;
}

RequestBudget Session::MakeBudget() const {
  RequestBudget budget;
  if (budget_.timeout.count() > 0) {
    budget.deadline = std::chrono::steady_clock::now() + budget_.timeout;
    budget.has_deadline = true;
  }
  budget.max_product_states = budget_.max_product_states;
  budget.max_answer_tuples = budget_.max_answer_tuples;
  return budget;
}

template <typename Fn>
auto Session::Serve(Fn&& body) -> decltype(body()) {
  auto start = std::chrono::steady_clock::now();
  server_->requests_.fetch_add(1, std::memory_order_relaxed);
  obs::Count(obs::kServeRequests);
  RequestBudget budget = MakeBudget();
  // Queue wait is recorded on its own histogram; serve.latency_ns stays
  // end-to-end, so service time = latency − queue_wait.
  Result<QueryServer::Ticket> ticket = server_->Admit(budget);
  obs::Observe(obs::kHistServeQueueWaitNs, LatencyNsSince(start));
  if (!ticket.ok()) {
    obs::Observe(obs::kHistServeLatencyNs, LatencyNsSince(start));
    return ticket.status();
  }
  ScopedRequestBudget scope(&budget);
  auto result = body();
  if (!result.ok() &&
      (result.status().code() == StatusCode::kDeadlineExceeded ||
       result.status().code() == StatusCode::kResourceExhausted)) {
    server_->budget_rejects_.fetch_add(1, std::memory_order_relaxed);
    obs::Count(obs::kServeBudgetRejects);
  }
  obs::Observe(obs::kHistServeLatencyNs, LatencyNsSince(start));
  return result;
}

Result<Relation> Session::Query(const FormulaPtr& f, size_t max_tuples) {
  return Serve([&]() -> Result<Relation> {
    auto start = std::chrono::steady_clock::now();
    STRQ_ASSIGN_OR_RETURN(TrackAutomaton rel, server_->CompileShared(*this, f));
    // Mirror AutomataEvaluator::Evaluate's enumeration (and its metrics) so
    // served answers are bit-identical to direct evaluation; the session
    // budget's tuple cap applies through CurrentMaxAnswerTuples.
    obs::Span span("eval.enumerate");
    span.Attr("answer_states", rel.NumStates());
    Result<std::vector<std::vector<std::string>>> tuples =
        rel.AllTuples(CurrentMaxAnswerTuples(max_tuples));
    if (!tuples.ok()) return tuples.status();
    span.Attr("tuples", static_cast<int64_t>(tuples->size()));
    obs::Count(obs::kEvalTuplesEnumerated,
               static_cast<int64_t>(tuples->size()));
    obs::Observe(obs::kHistQueryLatencyNs, LatencyNsSince(start));
    return Relation::Create(rel.arity(), *std::move(tuples));
  });
}

Result<bool> Session::QuerySentence(const FormulaPtr& f) {
  return Serve([&]() -> Result<bool> {
    if (!FreeVars(f).empty()) {
      return InvalidArgumentError("sentence expected, found free variables");
    }
    // Sharded: the truth of a sentence over the union is the OR of the
    // per-shard truths, so the coordinator stops at the first true shard
    // instead of materializing (and deduping) the merged answer.
    if (ShardRoutable(f)) {
      return server_->coordinator_->MergedTruth(f, shard_eval_ptrs_,
                                                parallel_);
    }
    STRQ_ASSIGN_OR_RETURN(
        TrackAutomaton rel,
        server_->CompileShared(*this, f, /*allow_shard_route=*/false));
    return rel.TruthValue();
  });
}

Result<TrackAutomaton> Session::Compile(const FormulaPtr& f) {
  return Serve([&]() -> Result<TrackAutomaton> {
    return server_->CompileShared(*this, f);
  });
}

Result<bool> Session::Contains(const FormulaPtr& f,
                               const std::vector<std::string>& tuple) {
  return Serve([&]() -> Result<bool> { return eval_->Contains(f, tuple); });
}

Result<std::optional<std::vector<std::string>>> Session::ExistsWitness(
    const FormulaPtr& f) {
  return Serve([&]() -> Result<std::optional<std::vector<std::string>>> {
    return eval_->ExistsWitness(f);
  });
}

Result<std::vector<std::vector<std::string>>> Session::TopK(
    const FormulaPtr& f, size_t k, int max_len) {
  return Serve([&]() -> Result<std::vector<std::vector<std::string>>> {
    return eval_->TopK(f, k, max_len);
  });
}

Result<bool> Session::IsSafe(const FormulaPtr& f) {
  return Serve([&]() -> Result<bool> {
    // Sharded: the union is finite iff every shard's answer is, so the
    // coordinator stops at the first infinite shard.
    if (ShardRoutable(f)) {
      return server_->coordinator_->MergedIsFinite(f, shard_eval_ptrs_,
                                                   parallel_);
    }
    STRQ_ASSIGN_OR_RETURN(
        TrackAutomaton rel,
        server_->CompileShared(*this, f, /*allow_shard_route=*/false));
    return rel.IsFinite();
  });
}

}  // namespace serve
}  // namespace strq
