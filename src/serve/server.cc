#include "serve/server.h"

#include <chrono>

#include "obs/trace.h"

namespace strq {
namespace serve {

namespace {

int64_t LatencyNsSince(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - since)
      .count();
}

}  // namespace

QueryServer::QueryServer(Alphabet alphabet, ServerOptions options)
    : options_(options),
      db_(std::move(alphabet)),
      cache_(std::make_shared<AtomCache>(db_.alphabet())),
      planner_(std::make_shared<plan::Planner>(options.planner)) {
  InstallCommitHook();
}

QueryServer::QueryServer(Database initial, ServerOptions options)
    : options_(options),
      db_(std::move(initial)),
      cache_(std::make_shared<AtomCache>(db_.alphabet())),
      planner_(std::make_shared<plan::Planner>(options.planner)) {
  InstallCommitHook();
}

void QueryServer::InstallCommitHook() {
  if (options_.enable_incremental) {
    incr_ = std::make_shared<incr::IncrementalIndex>(
        &db_, cache_, planner_, options_.incremental);
  }
  // Every commit (whatever API produced it) publishes its delta to the
  // subscribed index and reclaims cache entries for snapshots the commit
  // just orphaned. The hook runs under the writer lock, so the index sees
  // commits in revision order.
  db_.SetCommitHook([this](const CommitDelta& delta) {
    if (incr_ != nullptr) incr_->OnCommit(delta);
    ReclaimDeadSnapshots();
  });
}

QueryServer::~QueryServer() { db_.SetCommitHook(nullptr); }

Result<CommitDelta> QueryServer::CommitDeltas(
    const std::vector<TupleDelta>& ops) {
  return db_.ApplyDeltas(ops);
}

std::unique_ptr<Session> QueryServer::OpenSession() {
  sessions_.fetch_add(1, std::memory_order_relaxed);
  obs::Count(obs::kServeSessions);
  return std::unique_ptr<Session>(new Session(this));
}

void QueryServer::Ticket::Release() {
  if (server_ == nullptr) return;
  {
    std::lock_guard<std::mutex> lock(server_->adm_mu_);
    --server_->active_;
  }
  server_->adm_cv_.notify_one();
  server_ = nullptr;
}

Result<QueryServer::Ticket> QueryServer::Admit(const RequestBudget& budget) {
  if (options_.max_concurrent <= 0) return Ticket(nullptr);
  std::unique_lock<std::mutex> lock(adm_mu_);
  if (active_ < options_.max_concurrent) {
    ++active_;
    return Ticket(this);
  }
  if (options_.max_queued >= 0 && queued_ >= options_.max_queued) {
    admission_rejects_.fetch_add(1, std::memory_order_relaxed);
    obs::Count(obs::kServeAdmissionRejects);
    return ResourceExhaustedError("admission queue full");
  }
  ++queued_;
  bool admitted;
  if (budget.has_deadline) {
    admitted = adm_cv_.wait_until(lock, budget.deadline, [this] {
      return active_ < options_.max_concurrent;
    });
  } else {
    adm_cv_.wait(lock,
                 [this] { return active_ < options_.max_concurrent; });
    admitted = true;
  }
  --queued_;
  if (!admitted) {
    admission_rejects_.fetch_add(1, std::memory_order_relaxed);
    obs::Count(obs::kServeAdmissionRejects);
    return DeadlineExceededError("deadline expired waiting for admission");
  }
  ++active_;
  return Ticket(this);
}

Result<TrackAutomaton> QueryServer::CompileShared(AutomataEvaluator& eval,
                                                  const FormulaPtr& f,
                                                  const Database* db) {
  // The plan-cache key already mixes the database revision, so structurally
  // identical queries only collapse when they target the same snapshot.
  uint64_t key = planner_->QueryKey(f, db);
  auto outcome = inflight_.Do(key, [&] {
    CompiledEntry entry;
    entry.formula = f;
    // The leader routes through the incremental index: the answer is
    // patched forward from the last maintained revision when the delta
    // window allows, recompiled (over patched tries) otherwise.
    entry.result = incr_ != nullptr ? incr_->CompileAnswer(eval, f, *db)
                                    : eval.Compile(f);
    return entry;
  });
  if (outcome.leader) return outcome.value->result;
  // Waiter. Two reasons not to take the shared value: the hashed key
  // collided with a different formula, or the leader died of its OWN
  // budget (deadline/state ceiling) — a verdict that says nothing about
  // what this request's budget allows. Both fall back to a private compile
  // (which still hits the plan cache and the store's computed table, so
  // little work is repeated).
  if (!StructurallyEqual(outcome.value->formula, f)) {
    return eval.Compile(f);
  }
  const Result<TrackAutomaton>& shared = outcome.value->result;
  if (!shared.ok() &&
      (shared.status().code() == StatusCode::kDeadlineExceeded ||
       shared.status().code() == StatusCode::kResourceExhausted)) {
    return eval.Compile(f);
  }
  dedup_hits_.fetch_add(1, std::memory_order_relaxed);
  obs::Count(obs::kServeInflightDedupHits);
  return shared;
}

size_t QueryServer::ReclaimDeadSnapshots() {
  size_t evicted = cache_->EvictRevisionEntries(
      [this](int64_t rev) { return db_.IsLive(rev); });
  if (evicted > 0) {
    entries_reclaimed_.fetch_add(static_cast<int64_t>(evicted),
                                 std::memory_order_relaxed);
    obs::Count(obs::kServeSnapshotsReclaimed,
               static_cast<int64_t>(evicted));
    obs::Count(obs::kSnapshotReclaimed, static_cast<int64_t>(evicted));
  }
  return evicted;
}

QueryServer::Stats QueryServer::stats() const {
  Stats s;
  s.sessions = sessions_.load(std::memory_order_relaxed);
  s.requests = requests_.load(std::memory_order_relaxed);
  s.admission_rejects = admission_rejects_.load(std::memory_order_relaxed);
  s.inflight_dedup_hits = dedup_hits_.load(std::memory_order_relaxed);
  s.budget_rejects = budget_rejects_.load(std::memory_order_relaxed);
  s.entries_reclaimed = entries_reclaimed_.load(std::memory_order_relaxed);
  s.live_pins = static_cast<int64_t>(db_.pinned_revisions());
  return s;
}

Session::Session(QueryServer* server) : server_(server) {
  Refresh();
}

void Session::Refresh() {
  snapshot_ = server_->versioned_db().Snapshot();
  eval_ = std::make_unique<AutomataEvaluator>(
      &snapshot_.db(), server_->atom_cache(), server_->planner());
  eval_->set_parallel_options(parallel_);
  // Relation/adom/prefix automata come from the incremental index (which
  // patches across revisions) when the server maintains one.
  eval_->set_trie_provider(server_->incremental());
}

void Session::set_parallel_options(ParallelOptions options) {
  parallel_ = options;
  eval_->set_parallel_options(options);
}

RequestBudget Session::MakeBudget() const {
  RequestBudget budget;
  if (budget_.timeout.count() > 0) {
    budget.deadline = std::chrono::steady_clock::now() + budget_.timeout;
    budget.has_deadline = true;
  }
  budget.max_product_states = budget_.max_product_states;
  budget.max_answer_tuples = budget_.max_answer_tuples;
  return budget;
}

template <typename Fn>
auto Session::Serve(Fn&& body) -> decltype(body()) {
  auto start = std::chrono::steady_clock::now();
  server_->requests_.fetch_add(1, std::memory_order_relaxed);
  obs::Count(obs::kServeRequests);
  RequestBudget budget = MakeBudget();
  Result<QueryServer::Ticket> ticket = server_->Admit(budget);
  if (!ticket.ok()) {
    obs::Observe(obs::kHistServeLatencyNs, LatencyNsSince(start));
    return ticket.status();
  }
  ScopedRequestBudget scope(&budget);
  auto result = body();
  if (!result.ok() &&
      (result.status().code() == StatusCode::kDeadlineExceeded ||
       result.status().code() == StatusCode::kResourceExhausted)) {
    server_->budget_rejects_.fetch_add(1, std::memory_order_relaxed);
    obs::Count(obs::kServeBudgetRejects);
  }
  obs::Observe(obs::kHistServeLatencyNs, LatencyNsSince(start));
  return result;
}

Result<Relation> Session::Query(const FormulaPtr& f, size_t max_tuples) {
  return Serve([&]() -> Result<Relation> {
    auto start = std::chrono::steady_clock::now();
    STRQ_ASSIGN_OR_RETURN(TrackAutomaton rel,
                          server_->CompileShared(*eval_, f, &snapshot_.db()));
    // Mirror AutomataEvaluator::Evaluate's enumeration (and its metrics) so
    // served answers are bit-identical to direct evaluation; the session
    // budget's tuple cap applies through CurrentMaxAnswerTuples.
    obs::Span span("eval.enumerate");
    span.Attr("answer_states", rel.NumStates());
    Result<std::vector<std::vector<std::string>>> tuples =
        rel.AllTuples(CurrentMaxAnswerTuples(max_tuples));
    if (!tuples.ok()) return tuples.status();
    span.Attr("tuples", static_cast<int64_t>(tuples->size()));
    obs::Count(obs::kEvalTuplesEnumerated,
               static_cast<int64_t>(tuples->size()));
    obs::Observe(obs::kHistQueryLatencyNs, LatencyNsSince(start));
    return Relation::Create(rel.arity(), *std::move(tuples));
  });
}

Result<bool> Session::QuerySentence(const FormulaPtr& f) {
  return Serve([&]() -> Result<bool> {
    if (!FreeVars(f).empty()) {
      return InvalidArgumentError("sentence expected, found free variables");
    }
    STRQ_ASSIGN_OR_RETURN(TrackAutomaton rel,
                          server_->CompileShared(*eval_, f, &snapshot_.db()));
    return rel.TruthValue();
  });
}

Result<TrackAutomaton> Session::Compile(const FormulaPtr& f) {
  return Serve([&]() -> Result<TrackAutomaton> {
    return server_->CompileShared(*eval_, f, &snapshot_.db());
  });
}

Result<bool> Session::Contains(const FormulaPtr& f,
                               const std::vector<std::string>& tuple) {
  return Serve([&]() -> Result<bool> { return eval_->Contains(f, tuple); });
}

Result<std::optional<std::vector<std::string>>> Session::ExistsWitness(
    const FormulaPtr& f) {
  return Serve([&]() -> Result<std::optional<std::vector<std::string>>> {
    return eval_->ExistsWitness(f);
  });
}

Result<std::vector<std::vector<std::string>>> Session::TopK(
    const FormulaPtr& f, size_t k, int max_len) {
  return Serve([&]() -> Result<std::vector<std::vector<std::string>>> {
    return eval_->TopK(f, k, max_len);
  });
}

Result<bool> Session::IsSafe(const FormulaPtr& f) {
  return Serve([&]() -> Result<bool> {
    STRQ_ASSIGN_OR_RETURN(TrackAutomaton rel,
                          server_->CompileShared(*eval_, f, &snapshot_.db()));
    return rel.IsFinite();
  });
}

}  // namespace serve
}  // namespace strq
