#ifndef STRQ_OBS_TRACE_H_
#define STRQ_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace strq {
namespace obs {

// ---------------------------------------------------------------------------
// Runtime switch
// ---------------------------------------------------------------------------
//
// The whole observability layer is gated by one runtime flag so instrumented
// hot paths cost a single relaxed atomic load when tracing is off. The flag
// is initialized from the STRQ_OBS environment variable ("" or "0" = off,
// anything else = on) and can be flipped programmatically, e.g. by
// ExplainAnalyze or the bench harness.
//
// The flag atomic and the thread-local span cursor live in headers (internal
// namespace) so the disabled path of Span/Count inlines down to a load and a
// branch at every instrumentation site — no out-of-line call.
namespace internal {
// -1 = uninitialized (read STRQ_OBS on first query), 0 = off, 1 = on.
inline std::atomic<int> g_enabled{-1};
int ReadEnvFlagOnce();
}  // namespace internal

inline bool Enabled() {
  int v = internal::g_enabled.load(std::memory_order_relaxed);
  if (v < 0) v = internal::ReadEnvFlagOnce();
  return v != 0;
}

inline void SetEnabled(bool on) {
  internal::g_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
}

// RAII save/flip/restore of the flag (used by ExplainAnalyze so a single
// traced call does not permanently enable tracing for the process).
class ScopedEnable {
 public:
  explicit ScopedEnable(bool on) : saved_(Enabled()) { SetEnabled(on); }
  ~ScopedEnable() { SetEnabled(saved_); }
  ScopedEnable(const ScopedEnable&) = delete;
  ScopedEnable& operator=(const ScopedEnable&) = delete;

 private:
  bool saved_;
};

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

// Canonical counter names. Layers increment these through Count(); the full
// catalogue (and what each one means) is documented in docs/OBSERVABILITY.md.
inline constexpr char kDfaStatesBuilt[] = "dfa.states_built";
inline constexpr char kDfaMinimizations[] = "dfa.minimizations";
inline constexpr char kDfaDeterminizations[] = "dfa.determinizations";
inline constexpr char kDfaProducts[] = "dfa.products";
// Reachable-only kernel accounting: `explored` counts the state pairs the
// worklist actually materialized; `allocated` counts the full |A|x|B| pair
// space an eager kernel would have touched (both kernels add it, so the
// explored/allocated ratio measures what on-the-fly construction saved).
inline constexpr char kDfaProductStatesExplored[] =
    "dfa.product_states_explored";
inline constexpr char kDfaProductStatesAllocated[] =
    "dfa.product_states_allocated";
// Emptiness/universality deciders that stopped a worklist before exhausting
// the reachable pair space (first accepting pair found).
inline constexpr char kDfaEarlyExits[] = "dfa.early_exits";
// Character-class accounting (symbol-equivalence partition, src/automata/dfa):
// `classes_total` sums the class counts of every DFA built; the two byte
// counters compare the condensed (class-indexed) transition tables actually
// stored against the dense letter-indexed tables they replace — their ratio
// is the alphabet-compression factor.
inline constexpr char kDfaClassesTotal[] = "dfa.classes_total";
inline constexpr char kDfaTableBytesCondensed[] = "dfa.table_bytes_condensed";
inline constexpr char kDfaTableBytesDenseEquiv[] =
    "dfa.table_bytes_dense_equiv";
// Per-state transition computations the product kernels performed: the
// condensed kernel pays one per joint class, the dense baseline one per raw
// letter, so condensed/dense on the same workload measures saved inner-loop
// work.
inline constexpr char kDfaProductTransitions[] =
    "dfa.product_transitions_computed";
// Thread-pool traffic (src/base/thread_pool): tasks submitted, and the
// number of times a worker had to block waiting for work.
inline constexpr char kPoolTasks[] = "pool.tasks";
inline constexpr char kPoolStealsOrWaits[] = "pool.steals_or_waits";
inline constexpr char kMtaIntersections[] = "mta.intersections";
inline constexpr char kMtaUnions[] = "mta.unions";
inline constexpr char kMtaComplements[] = "mta.complements";
inline constexpr char kMtaProjections[] = "mta.projections";
inline constexpr char kMtaCylindrifications[] = "mta.cylindrifications";
inline constexpr char kMtaRenamings[] = "mta.renamings";
inline constexpr char kMtaStatesBuilt[] = "mta.states_built";
inline constexpr char kMtaTransitionsBuilt[] = "mta.transitions_built";
// States of intermediate products/complements/projections, before the seed
// Create() path: the quantity the planner's cost model tries to shrink.
inline constexpr char kMtaIntermediateStates[] = "mta.intermediate_states";
inline constexpr char kPatternCacheHits[] = "pattern_cache.hits";
inline constexpr char kPatternCacheMisses[] = "pattern_cache.misses";
inline constexpr char kStoreUniqueHits[] = "store.unique_hits";
inline constexpr char kStoreUniqueMisses[] = "store.unique_misses";
inline constexpr char kStoreOpHits[] = "store.op_hits";
inline constexpr char kStoreOpMisses[] = "store.op_misses";
inline constexpr char kAtomCacheHits[] = "atom_cache.hits";
inline constexpr char kAtomCacheMisses[] = "atom_cache.misses";
inline constexpr char kEvalTuplesEnumerated[] = "eval.tuples_enumerated";
inline constexpr char kAlgebraNodesEvaluated[] = "algebra.nodes_evaluated";
inline constexpr char kAlgebraMemoHits[] = "algebra.memo_hits";
inline constexpr char kRestrictedCandidates[] =
    "restricted.candidates_enumerated";
inline constexpr char kConcatBoundedRounds[] = "concat.bounded_rounds";
// Planner counters (src/plan): plan-cache traffic, rewrite activity, and the
// estimated-vs-actual state accounting ExplainAnalyze surfaces.
inline constexpr char kPlanCacheHits[] = "plan.cache_hits";
inline constexpr char kPlanCacheMisses[] = "plan.cache_misses";
inline constexpr char kPlanRulesFired[] = "plan.rules_fired";
inline constexpr char kPlanSharedSubplans[] = "plan.shared_subplans";
inline constexpr char kPlanEstimatedStates[] = "plan.estimated_states";
inline constexpr char kPlanActualStates[] = "plan.actual_states";

// Process-wide registry of named monotonic counters. Cheap to read, guarded
// by a mutex on writes; writes only happen while tracing is enabled.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  void Add(const std::string& name, int64_t delta);
  int64_t Get(const std::string& name) const;
  std::map<std::string, int64_t> Snapshot() const;
  void Reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, int64_t> counters_;
};

// Increments a global counter iff tracing is enabled. The name should be one
// of the k* constants above (new names are allowed; they simply appear in
// snapshots).
namespace internal {
void CountSlow(const char* name, int64_t delta);
}  // namespace internal

inline void Count(const char* name, int64_t delta = 1) {
  if (Enabled()) internal::CountSlow(name, delta);
}

// The difference after - before, dropping zero entries: "what did this
// operation cost". Keys present only in `after` are kept as-is.
std::map<std::string, int64_t> MetricsDelta(
    const std::map<std::string, int64_t>& before,
    const std::map<std::string, int64_t>& after);

// ---------------------------------------------------------------------------
// Span tree
// ---------------------------------------------------------------------------

// One node of a trace: a named region with wall time, optional free-form
// detail (e.g. the formula being compiled), integer attributes (state
// counts), and children in execution order.
struct TraceNode {
  std::string name;
  std::string detail;
  double seconds = 0.0;
  std::vector<std::pair<std::string, int64_t>> attrs;
  std::vector<std::unique_ptr<TraceNode>> children;

  // Last-set value of an attribute, if present.
  const int64_t* FindAttr(const std::string& key) const;
  // Total node count of the subtree (including this node).
  int TreeSize() const;
};

// Indented per-node rendering, the EXPLAIN ANALYZE look:
//   compile ∃y. R(y) ∧ x ≼ y   [states=7 arity=1]   0.0031s
std::string PrettyTrace(const TraceNode& root);

namespace internal {
// Attachment point for new spans on this thread; null when no TraceSession
// is installed. Header-inline so Span's disabled path needs no call.
inline thread_local TraceNode* t_current = nullptr;
}  // namespace internal

// Is a TraceSession collecting on the CURRENT thread? Spans opened on other
// threads are inert, so engines that fan work out to a pool check this and
// stay serial while a trace is being collected (EXPLAIN ANALYZE keeps its
// complete span tree; production runs go wide).
inline bool TraceActive() { return internal::t_current != nullptr; }

// Installs a collection root for the current thread. While a session is
// alive and Enabled() is true, Span objects attach to the tree. Sessions do
// not nest (the inner one is inert).
class TraceSession {
 public:
  explicit TraceSession(std::string root_name = "trace");
  ~TraceSession();
  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  const TraceNode& root() const { return *root_; }
  // Detaches the collected tree; the session becomes inert.
  std::unique_ptr<TraceNode> Take();

 private:
  std::unique_ptr<TraceNode> root_;
  TraceNode* saved_current_ = nullptr;
  bool installed_ = false;
};

// RAII span. Active only when tracing is enabled AND a TraceSession is
// installed on this thread; otherwise construction is an inlined pointer
// check (the common case in production runs).
class Span {
 public:
  explicit Span(const char* name) {
    if (internal::t_current != nullptr && Enabled()) Init(name);
  }
  ~Span() {
    if (node_ != nullptr) Finish();
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  bool active() const { return node_ != nullptr; }
  // All mutators are no-ops on inactive spans. Callers building expensive
  // detail strings should guard on active() first.
  void set_detail(std::string detail);
  void Attr(const char* key, int64_t value);

 private:
  void Init(const char* name);
  void Finish();

  TraceNode* node_ = nullptr;
  TraceNode* parent_ = nullptr;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace obs
}  // namespace strq

#endif  // STRQ_OBS_TRACE_H_
