#ifndef STRQ_OBS_TRACE_H_
#define STRQ_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/histogram.h"

namespace strq {
namespace obs {

// ---------------------------------------------------------------------------
// Runtime switch
// ---------------------------------------------------------------------------
//
// The whole observability layer is gated by one runtime flag so instrumented
// hot paths cost a single relaxed atomic load when tracing is off. The flag
// is initialized from the STRQ_OBS environment variable ("" or "0" = off,
// anything else = on) and can be flipped programmatically, e.g. by
// ExplainAnalyze or the bench harness.
//
// The flag atomic and the per-thread trace context live in headers (internal
// namespace) so the disabled path of Span/Count inlines down to a load and a
// branch at every instrumentation site — no out-of-line call.
namespace internal {
// -1 = uninitialized (read STRQ_OBS on first query), 0 = off, 1 = on.
inline std::atomic<int> g_enabled{-1};
int ReadEnvFlagOnce();
}  // namespace internal

inline bool Enabled() {
  int v = internal::g_enabled.load(std::memory_order_relaxed);
  if (v < 0) v = internal::ReadEnvFlagOnce();
  return v != 0;
}

inline void SetEnabled(bool on) {
  internal::g_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
}

// RAII save/flip/restore of the flag (used by ExplainAnalyze so a single
// traced call does not permanently enable tracing for the process).
class ScopedEnable {
 public:
  explicit ScopedEnable(bool on) : saved_(Enabled()) { SetEnabled(on); }
  ~ScopedEnable() { SetEnabled(saved_); }
  ScopedEnable(const ScopedEnable&) = delete;
  ScopedEnable& operator=(const ScopedEnable&) = delete;

 private:
  bool saved_;
};

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

// Canonical counter names. Layers increment these through Count(); the full
// catalogue (and what each one means) is documented in docs/OBSERVABILITY.md.
inline constexpr char kDfaStatesBuilt[] = "dfa.states_built";
inline constexpr char kDfaMinimizations[] = "dfa.minimizations";
inline constexpr char kDfaDeterminizations[] = "dfa.determinizations";
inline constexpr char kDfaProducts[] = "dfa.products";
// Reachable-only kernel accounting: `explored` counts the state pairs the
// worklist actually materialized; `allocated` counts the full |A|x|B| pair
// space an eager kernel would have touched (both kernels add it, so the
// explored/allocated ratio measures what on-the-fly construction saved).
inline constexpr char kDfaProductStatesExplored[] =
    "dfa.product_states_explored";
inline constexpr char kDfaProductStatesAllocated[] =
    "dfa.product_states_allocated";
// Emptiness/universality deciders that stopped a worklist before exhausting
// the reachable pair space (first accepting pair found).
inline constexpr char kDfaEarlyExits[] = "dfa.early_exits";
// Character-class accounting (symbol-equivalence partition, src/automata/dfa):
// `classes_total` sums the class counts of every DFA built; the two byte
// counters compare the condensed (class-indexed) transition tables actually
// stored against the dense letter-indexed tables they replace — their ratio
// is the alphabet-compression factor.
inline constexpr char kDfaClassesTotal[] = "dfa.classes_total";
inline constexpr char kDfaTableBytesCondensed[] = "dfa.table_bytes_condensed";
inline constexpr char kDfaTableBytesDenseEquiv[] =
    "dfa.table_bytes_dense_equiv";
// Per-state transition computations the product kernels performed: the
// condensed kernel pays one per joint class, the dense baseline one per raw
// letter, so condensed/dense on the same workload measures saved inner-loop
// work.
inline constexpr char kDfaProductTransitions[] =
    "dfa.product_transitions_computed";
// Thread-pool traffic (src/base/thread_pool): tasks submitted, and the
// number of times a worker had to block waiting for work.
inline constexpr char kPoolTasks[] = "pool.tasks";
inline constexpr char kPoolStealsOrWaits[] = "pool.steals_or_waits";
inline constexpr char kMtaIntersections[] = "mta.intersections";
inline constexpr char kMtaUnions[] = "mta.unions";
inline constexpr char kMtaComplements[] = "mta.complements";
inline constexpr char kMtaProjections[] = "mta.projections";
inline constexpr char kMtaCylindrifications[] = "mta.cylindrifications";
inline constexpr char kMtaDifferences[] = "mta.differences";
inline constexpr char kMtaRenamings[] = "mta.renamings";
inline constexpr char kMtaStatesBuilt[] = "mta.states_built";
inline constexpr char kMtaTransitionsBuilt[] = "mta.transitions_built";
// States of intermediate products/complements/projections, before the seed
// Create() path: the quantity the planner's cost model tries to shrink.
inline constexpr char kMtaIntermediateStates[] = "mta.intermediate_states";
inline constexpr char kPatternCacheHits[] = "pattern_cache.hits";
inline constexpr char kPatternCacheMisses[] = "pattern_cache.misses";
inline constexpr char kStoreUniqueHits[] = "store.unique_hits";
inline constexpr char kStoreUniqueMisses[] = "store.unique_misses";
inline constexpr char kStoreOpHits[] = "store.op_hits";
inline constexpr char kStoreOpMisses[] = "store.op_misses";
// Budgeted ops answered from the memoized RESOURCE_EXHAUSTED set (same op,
// operands, and effective budget) without re-running the kernel.
inline constexpr char kStoreExhaustedHits[] = "store.exhausted_hits";
inline constexpr char kAtomCacheHits[] = "atom_cache.hits";
inline constexpr char kAtomCacheMisses[] = "atom_cache.misses";
// A thread found another thread already compiling the atom/pattern it wanted
// and waited for that build instead of duplicating it (single-flight).
inline constexpr char kAtomCacheSingleflightWaits[] =
    "atom_cache.singleflight_waits";
// Revision-keyed atom entries dropped because their snapshot died.
inline constexpr char kAtomCacheEvictions[] = "atom_cache.evictions";
inline constexpr char kEvalTuplesEnumerated[] = "eval.tuples_enumerated";
inline constexpr char kAlgebraNodesEvaluated[] = "algebra.nodes_evaluated";
inline constexpr char kAlgebraMemoHits[] = "algebra.memo_hits";
inline constexpr char kRestrictedCandidates[] =
    "restricted.candidates_enumerated";
// Candidates the DFA-guided trie traversal skipped without evaluating the
// quantifier body (dead-subtree pruning against the guard automata). The
// sum candidates_enumerated + candidates_pruned is the full candidate set.
inline constexpr char kRestrictedCandidatesPruned[] =
    "restricted.candidates_pruned";
inline constexpr char kConcatBoundedRounds[] = "concat.bounded_rounds";
// Lazy product counters (src/lazy): states materialized on demand by the
// signature-keyed cache, lookups answered by an already-built state, and
// queries that returned before exhausting the reachable product (witness
// found, top-k filled, or membership decided on a single path).
inline constexpr char kLazyStatesCreated[] = "lazy.states_created";
inline constexpr char kLazyCacheHits[] = "lazy.cache_hits";
inline constexpr char kLazyEarlyExits[] = "lazy.early_exits";
// Planner counters (src/plan): plan-cache traffic, rewrite activity, and the
// estimated-vs-actual state accounting ExplainAnalyze surfaces.
inline constexpr char kPlanCacheHits[] = "plan.cache_hits";
inline constexpr char kPlanCacheMisses[] = "plan.cache_misses";
inline constexpr char kPlanRulesFired[] = "plan.rules_fired";
inline constexpr char kPlanSharedSubplans[] = "plan.shared_subplans";
inline constexpr char kPlanEstimatedStates[] = "plan.estimated_states";
inline constexpr char kPlanActualStates[] = "plan.actual_states";
// Serving counters (src/serve): session/request traffic through the query
// server, admission-control rejects, requests that shared another request's
// in-flight compilation, and snapshots reclaimed after their last pin died.
inline constexpr char kServeSessions[] = "serve.sessions";
inline constexpr char kServeRequests[] = "serve.requests";
inline constexpr char kServeAdmissionRejects[] = "serve.admission_rejects";
inline constexpr char kServeInflightDedupHits[] = "serve.inflight_dedup_hits";
inline constexpr char kServeSnapshotsReclaimed[] = "serve.snapshots_reclaimed";
inline constexpr char kServeBudgetRejects[] = "serve.budget_rejects";
// Incremental-maintenance counters (src/incr): tries/answers patched with a
// small delta instead of recompiled from tuples, full-recompile fallbacks
// (broken delta chain, non-distributive formula, planner advice), delta
// folds re-anchoring a base automaton, and unchanged-revision promotions
// (the delta chain was empty so the old automaton was reused as-is).
inline constexpr char kIncrPatches[] = "incr.patches";
inline constexpr char kIncrRecompiles[] = "incr.recompiles";
inline constexpr char kIncrCompactions[] = "incr.compactions";
inline constexpr char kIncrUnchangedHits[] = "incr.unchanged_hits";
// Answer-level maintenance: compiled answers extended by a delta compile
// (insert-only linear-positive queries) or spliced by union/difference
// (single-atom queries) without re-running the full compile.
inline constexpr char kIncrAnswerPatches[] = "incr.answer_patches";
// MVCC snapshot surface: cache entries reclaimed when a snapshot's last pin
// died (same event as serve.snapshots_reclaimed, counted in entries).
inline constexpr char kSnapshotReclaimed[] = "snapshot.reclaimed";
// Sharded-coordinator counters (src/shard): queries routed through the
// per-shard compile + regular-language merge, queries a sharded server fell
// back to the merge stack for (formula not ∪-distributable over a horizontal
// partition), shards a decider never examined because an earlier shard
// already fixed the verdict (sentence true / answer infinite), per-shard
// answers folded into the merge store's interned Union, tuple commits fanned
// to owning shards, and full re-partitions forced by opaque commits.
inline constexpr char kShardQueries[] = "shard.queries";
inline constexpr char kShardFallbacks[] = "shard.fallbacks";
inline constexpr char kShardEarlyExits[] = "shard.early_exits";
inline constexpr char kShardMergeUnions[] = "shard.merge_unions";
inline constexpr char kShardCommitsFanned[] = "shard.commits_fanned";
inline constexpr char kShardReseeds[] = "shard.reseeds";

// Histogram names: per-query end-to-end latency (all three engines record
// it) and the per-phase costs ExplainAnalyze separates.
inline constexpr char kHistQueryLatencyNs[] = "query.latency_ns";
inline constexpr char kHistPlanNs[] = "phase.plan_ns";
inline constexpr char kHistCompileNs[] = "phase.compile_ns";
inline constexpr char kHistEnumerateNs[] = "phase.enumerate_ns";
// End-to-end latency of one served request (admission to answer), as seen by
// the serving layer across all concurrent sessions.
inline constexpr char kHistServeLatencyNs[] = "serve.latency_ns";
// Wall time of one successful incremental patch (trie or answer), the
// quantity the patch-vs-recompile heuristic is trying to keep below a
// fresh compile.
inline constexpr char kHistIncrPatchNs[] = "incr.patch_ns";
// Wall time from lazy-query start to the first answer (witness found, first
// top-k tuple, or membership verdict) — the quantity the lazy layer exists
// to minimize relative to full materialization.
inline constexpr char kHistLazyFirstAnswerNs[] = "lazy.first_answer_ns";
// Time a request spent waiting for an admission slot, recorded separately
// from serve.latency_ns (which stays end-to-end: queue wait + service).
// Subtracting the two separates admission effects from evaluation cost.
inline constexpr char kHistServeQueueWaitNs[] = "serve.queue_wait_ns";
// Wall time of the coordinator's merge step alone: adopting per-shard
// answers into the merge store and folding them with interned Union — the
// overhead sharding adds on top of the per-shard compiles.
inline constexpr char kHistShardMergeNs[] = "shard.merge_ns";

// Process-wide registry of named monotonic counters plus log-bucketed
// latency histograms. Cheap to read, guarded by a mutex on writes; writes
// only happen while tracing is enabled.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  void Add(const std::string& name, int64_t delta);
  int64_t Get(const std::string& name) const;
  std::map<std::string, int64_t> Snapshot() const;

  // Histogram side: one sample into the named histogram / the current
  // p50-p90-p99 summaries of every histogram with at least one sample.
  void Observe(const std::string& name, int64_t value);
  Histogram::Snapshot Hist(const std::string& name) const;
  std::map<std::string, Histogram::Snapshot> HistSnapshot() const;

  // Clears counters and histograms.
  void Reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, int64_t> counters_;
  std::map<std::string, Histogram> hists_;
};

// Increments a global counter iff tracing is enabled. The name should be one
// of the k* constants above (new names are allowed; they simply appear in
// snapshots).
namespace internal {
void CountSlow(const char* name, int64_t delta);
void ObserveSlow(const char* name, int64_t value);
}  // namespace internal

inline void Count(const char* name, int64_t delta = 1) {
  if (Enabled()) internal::CountSlow(name, delta);
}

// Records one histogram sample iff tracing is enabled.
inline void Observe(const char* name, int64_t value) {
  if (Enabled()) internal::ObserveSlow(name, value);
}

// The difference after - before, dropping zero entries: "what did this
// operation cost". Keys present only in `after` are kept as-is.
std::map<std::string, int64_t> MetricsDelta(
    const std::map<std::string, int64_t>& before,
    const std::map<std::string, int64_t>& after);

// ---------------------------------------------------------------------------
// Memory accounting
// ---------------------------------------------------------------------------
//
// Byte-level gauges for the three structures that retain memory across
// queries: the hash-consed AutomatonStore, the AtomCache bookkeeping layered
// on top of it, and the planner's plan cache. Unlike counters these are NOT
// gated on Enabled(): the owning structures add on insert and subtract on
// eviction/clear/destruction, and a gauge that missed half its inserts could
// never balance back to zero. Each update is one relaxed atomic add.
enum class MemCategory : int {
  kStore = 0,      // AutomatonStore: interned DFAs + unique/computed tables
  kAtomCache = 1,  // AtomCache: atom/pattern/trie keys and handles
  kPlanCache = 2,  // plan::Planner: cached plan entries
};
inline constexpr int kNumMemCategories = 3;

// Gauge names as they appear in snapshots, bench scalars, and the shell's
// `stats` output.
inline constexpr char kGaugeStoreBytes[] = "store.bytes";
inline constexpr char kGaugeAtomCacheBytes[] = "atom_cache.bytes";
inline constexpr char kGaugePlanCacheBytes[] = "plan.cache_bytes";

namespace internal {
inline std::atomic<int64_t> g_mem_bytes[kNumMemCategories] = {};
}  // namespace internal

inline void MemAdd(MemCategory c, int64_t delta) {
  internal::g_mem_bytes[static_cast<int>(c)].fetch_add(
      delta, std::memory_order_relaxed);
}

inline int64_t MemBytes(MemCategory c) {
  return internal::g_mem_bytes[static_cast<int>(c)].load(
      std::memory_order_relaxed);
}

// {"store.bytes": ..., "atom_cache.bytes": ..., "plan.cache_bytes": ...}
std::map<std::string, int64_t> MemSnapshot();

// ---------------------------------------------------------------------------
// Span records and trace contexts
// ---------------------------------------------------------------------------
//
// Threading model: a span is built entirely on its own thread (no shared
// state while it is open) and, on completion, appended to a per-thread
// buffer owned by the active TraceSession and/or to the flight recorder's
// ring. Spans carry explicit ids and parent ids, so the tree is stitched
// after the fact — ThreadPool workers can open spans concurrently and the
// session reassembles one tree regardless of which thread ran what.

// A completed span, the unit both the session buffers and the flight
// recorder store.
struct SpanRecord {
  uint64_t id = 0;      // process-unique, allocation order = open order
  uint64_t parent = 0;  // id of the enclosing span (0 = session root)
  uint32_t thread = 0;  // small dense per-thread tag (ThreadTag())
  std::string name;
  std::string detail;
  int64_t start_ns = 0;  // steady-clock epoch, for Chrome trace export
  int64_t dur_ns = 0;
  std::vector<std::pair<std::string, int64_t>> attrs;
};

namespace internal {
// Process-unique span ids. Relaxed: only uniqueness matters, and ordering
// within one thread is program order anyway.
inline std::atomic<uint64_t> g_next_span_id{1};

// Small dense per-thread tags for SpanRecord::thread and flight-recorder
// sharding (std::thread::id is neither small nor dense).
inline std::atomic<uint32_t> g_next_thread_tag{1};
inline uint32_t ThreadTag() {
  thread_local uint32_t tag =
      g_next_thread_tag.fetch_add(1, std::memory_order_relaxed);
  return tag;
}

// Generation of the installed session (0 = none), published so readers can
// validate a thread-local context without dereferencing a possibly-dead
// session pointer. Generations are process-unique and never reused. The
// session pointer itself is a file-level atomic in trace.cc.
inline std::atomic<uint64_t> g_session_gen{0};

// Per-thread trace context: which session generation this thread feeds (0 =
// none) and the innermost open span (0 = attach to the session root).
struct TlsTrace {
  uint64_t generation = 0;
  uint64_t parent_id = 0;
  // Cached per-thread session buffer, valid while buffer_generation matches.
  std::vector<SpanRecord>* buffer = nullptr;
  uint64_t buffer_generation = 0;
};
inline thread_local TlsTrace t_trace;
}  // namespace internal

// A snapshot of the calling thread's trace context, for handing to another
// thread. ThreadPool captures one at Submit/ParallelFor time and installs it
// on the worker, so spans opened inside pooled tasks stitch into the
// submitting thread's tree. Contexts must not outlive the session they point
// into — ParallelFor's completion barrier guarantees that for every pooled
// path in this codebase.
struct TraceContext {
  uint64_t generation = 0;
  uint64_t parent_id = 0;
};

inline TraceContext CurrentTraceContext() {
  return TraceContext{internal::t_trace.generation,
                      internal::t_trace.parent_id};
}

// Installs a propagated context on the current thread for a scope (RAII).
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(const TraceContext& ctx)
      : saved_generation_(internal::t_trace.generation),
        saved_parent_(internal::t_trace.parent_id) {
    internal::t_trace.generation = ctx.generation;
    internal::t_trace.parent_id = ctx.parent_id;
  }
  ~ScopedTraceContext() {
    internal::t_trace.generation = saved_generation_;
    internal::t_trace.parent_id = saved_parent_;
  }
  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  uint64_t saved_generation_;
  uint64_t saved_parent_;
};

// ---------------------------------------------------------------------------
// Span tree
// ---------------------------------------------------------------------------

// One node of an assembled trace: a named region with wall time, optional
// free-form detail (e.g. the formula being compiled), integer attributes
// (state counts), the tag of the thread that ran it, and children in span-id
// (= open) order.
struct TraceNode {
  std::string name;
  std::string detail;
  double seconds = 0.0;
  uint32_t thread = 0;
  std::vector<std::pair<std::string, int64_t>> attrs;
  std::vector<std::unique_ptr<TraceNode>> children;

  // Last-set value of an attribute, if present.
  const int64_t* FindAttr(const std::string& key) const;
  // Total node count of the subtree (including this node).
  int TreeSize() const;
  // Distinct thread tags across the subtree — the parallel-profile signal.
  int DistinctThreads() const;
};

// Indented per-node rendering, the EXPLAIN ANALYZE look:
//   compile ∃y. R(y) ∧ x ≼ y   [states=7 arity=1]   0.0031s
// Spans that ran on a different thread than the root are suffixed @tN.
std::string PrettyTrace(const TraceNode& root);

// Collects spans into one tree. At most one session is installed
// process-wide at a time (a nested session is inert and collects nothing);
// while one is installed and Enabled() is true, spans on the installing
// thread — and on any thread a TraceContext was propagated to — attach to
// the tree. Spans on unrelated threads are not collected (they still reach
// the flight recorder if it is armed).
class TraceSession {
 public:
  explicit TraceSession(std::string root_name = "trace");
  ~TraceSession();
  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  // Assembles buffered spans into the tree and returns it. Must be called
  // from a point where no propagated context is still running (ParallelFor
  // has joined); the installing thread's own spans must be closed.
  const TraceNode& root();
  // Assembles, detaches the tree, and uninstalls; the session becomes inert.
  std::unique_ptr<TraceNode> Take();

  uint64_t generation() const { return generation_; }
  uint64_t root_id() const { return root_id_; }

  // Appends a completed span to the calling thread's buffer. Called by
  // Span::Finish; not part of the public surface.
  void Record(SpanRecord rec);

 private:
  void Uninstall();
  void Assemble();

  std::unique_ptr<TraceNode> root_;
  uint64_t generation_ = 0;  // 0 when the session failed to install (nested)
  uint64_t root_id_ = 0;
  bool installed_ = false;
  uint64_t saved_generation_ = 0;
  uint64_t saved_parent_ = 0;

  // Per-thread span buffers. Each buffer is written by exactly one thread;
  // the vector of buffers is guarded by mu_. Assembly drains them.
  std::mutex mu_;
  std::vector<std::unique_ptr<std::vector<SpanRecord>>> buffers_;
  // id → node, so spans arriving across multiple Assemble calls still find
  // their parents.
  std::unordered_map<uint64_t, TraceNode*> index_;
};

// RAII span. Construction is an inlined flag check when tracing is off; when
// on, the span is recorded if this thread feeds the installed session
// (directly or via a propagated TraceContext) or the flight recorder is
// armed. The record is built locally and published only at destruction.
class Span {
 public:
  explicit Span(const char* name) {
    if (Enabled()) Init(name);
  }
  ~Span() {
    if (rec_ != nullptr) Finish();
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  bool active() const { return rec_ != nullptr; }
  // All mutators are no-ops on inactive spans. Callers building expensive
  // detail strings should guard on active() first.
  void set_detail(std::string detail);
  void Attr(const char* key, int64_t value);

 private:
  void Init(const char* name);
  void Finish();

  std::unique_ptr<SpanRecord> rec_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace obs
}  // namespace strq

#endif  // STRQ_OBS_TRACE_H_
