#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>

#include "obs/flight.h"

namespace strq {
namespace obs {

namespace internal {

int ReadEnvFlagOnce() {
  const char* v = std::getenv("STRQ_OBS");
  int on = (v == nullptr || v[0] == '\0' || std::strcmp(v, "0") == 0) ? 0 : 1;
  g_enabled.store(on, std::memory_order_relaxed);
  return on;
}

}  // namespace internal

namespace {

// The installed session. Readers must validate their thread-local generation
// against internal::g_session_gen BEFORE dereferencing: generations are
// never reused, so a matching generation implies the session is still alive
// (propagated contexts may not outlive their session — ParallelFor's barrier
// enforces that for every pooled path).
std::atomic<TraceSession*> g_session{nullptr};
std::atomic<uint64_t> g_generation_counter{0};

}  // namespace

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

void MetricsRegistry::Add(const std::string& name, int64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_[name] += delta;
}

int64_t MetricsRegistry::Get(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

std::map<std::string, int64_t> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

void MetricsRegistry::Observe(const std::string& name, int64_t value) {
  std::lock_guard<std::mutex> lock(mu_);
  hists_[name].Observe(value);
}

Histogram::Snapshot MetricsRegistry::Hist(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = hists_.find(name);
  return it == hists_.end() ? Histogram::Snapshot() : it->second.TakeSnapshot();
}

std::map<std::string, Histogram::Snapshot> MetricsRegistry::HistSnapshot()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, Histogram::Snapshot> out;
  for (const auto& [name, hist] : hists_) {
    if (hist.count() > 0) out[name] = hist.TakeSnapshot();
  }
  return out;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  hists_.clear();
}

namespace internal {

void CountSlow(const char* name, int64_t delta) {
  MetricsRegistry::Global().Add(name, delta);
}

void ObserveSlow(const char* name, int64_t value) {
  MetricsRegistry::Global().Observe(name, value);
}

}  // namespace internal

std::map<std::string, int64_t> MetricsDelta(
    const std::map<std::string, int64_t>& before,
    const std::map<std::string, int64_t>& after) {
  std::map<std::string, int64_t> delta;
  for (const auto& [name, value] : after) {
    auto it = before.find(name);
    int64_t d = value - (it == before.end() ? 0 : it->second);
    if (d != 0) delta[name] = d;
  }
  return delta;
}

std::map<std::string, int64_t> MemSnapshot() {
  return {{kGaugeStoreBytes, MemBytes(MemCategory::kStore)},
          {kGaugeAtomCacheBytes, MemBytes(MemCategory::kAtomCache)},
          {kGaugePlanCacheBytes, MemBytes(MemCategory::kPlanCache)}};
}

// ---------------------------------------------------------------------------
// TraceNode
// ---------------------------------------------------------------------------

const int64_t* TraceNode::FindAttr(const std::string& key) const {
  for (auto it = attrs.rbegin(); it != attrs.rend(); ++it) {
    if (it->first == key) return &it->second;
  }
  return nullptr;
}

int TraceNode::TreeSize() const {
  int total = 1;
  for (const auto& child : children) total += child->TreeSize();
  return total;
}

namespace {

void CollectThreads(const TraceNode& node, std::set<uint32_t>* out) {
  if (node.thread != 0) out->insert(node.thread);
  for (const auto& child : node.children) CollectThreads(*child, out);
}

void PrettyTraceInto(const TraceNode& node, int depth, uint32_t root_thread,
                     std::string* out) {
  out->append(static_cast<size_t>(2 * depth), ' ');
  out->append(node.name);
  if (!node.detail.empty()) {
    out->push_back(' ');
    out->append(node.detail);
  }
  if (!node.attrs.empty()) {
    out->append("  [");
    for (size_t i = 0; i < node.attrs.size(); ++i) {
      if (i > 0) out->push_back(' ');
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%s=%lld", node.attrs[i].first.c_str(),
                    static_cast<long long>(node.attrs[i].second));
      out->append(buf);
    }
    out->push_back(']');
  }
  if (node.thread != 0 && node.thread != root_thread) {
    char tbuf[16];
    std::snprintf(tbuf, sizeof(tbuf), "  @t%u", node.thread);
    out->append(tbuf);
  }
  char time_buf[48];
  std::snprintf(time_buf, sizeof(time_buf), "  %.6fs", node.seconds);
  out->append(time_buf);
  out->push_back('\n');
  for (const auto& child : node.children) {
    PrettyTraceInto(*child, depth + 1, root_thread, out);
  }
}

}  // namespace

int TraceNode::DistinctThreads() const {
  std::set<uint32_t> threads;
  CollectThreads(*this, &threads);
  return static_cast<int>(threads.size());
}

std::string PrettyTrace(const TraceNode& root) {
  std::string out;
  PrettyTraceInto(root, 0, root.thread, &out);
  return out;
}

// ---------------------------------------------------------------------------
// TraceSession
// ---------------------------------------------------------------------------

TraceSession::TraceSession(std::string root_name)
    : root_(std::make_unique<TraceNode>()) {
  root_->name = std::move(root_name);
  root_->thread = internal::ThreadTag();
  TraceSession* expected = nullptr;
  if (!g_session.compare_exchange_strong(expected, this,
                                         std::memory_order_acq_rel)) {
    return;  // a session is already installed; this one stays inert
  }
  generation_ =
      g_generation_counter.fetch_add(1, std::memory_order_relaxed) + 1;
  root_id_ = internal::g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  index_[root_id_] = root_.get();
  saved_generation_ = internal::t_trace.generation;
  saved_parent_ = internal::t_trace.parent_id;
  internal::t_trace.generation = generation_;
  internal::t_trace.parent_id = root_id_;
  installed_ = true;
  // Published last: a thread that sees this generation can safely
  // dereference g_session.
  internal::g_session_gen.store(generation_, std::memory_order_release);
}

TraceSession::~TraceSession() { Uninstall(); }

void TraceSession::Uninstall() {
  if (!installed_) return;
  internal::g_session_gen.store(0, std::memory_order_release);
  g_session.store(nullptr, std::memory_order_release);
  internal::t_trace.generation = saved_generation_;
  internal::t_trace.parent_id = saved_parent_;
  installed_ = false;
}

void TraceSession::Record(SpanRecord rec) {
  internal::TlsTrace& tls = internal::t_trace;
  if (tls.buffer_generation != generation_ || tls.buffer == nullptr) {
    std::lock_guard<std::mutex> lock(mu_);
    buffers_.push_back(std::make_unique<std::vector<SpanRecord>>());
    tls.buffer = buffers_.back().get();
    tls.buffer_generation = generation_;
  }
  tls.buffer->push_back(std::move(rec));
}

void TraceSession::Assemble() {
  std::vector<SpanRecord> recs;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& buffer : buffers_) {
      for (SpanRecord& rec : *buffer) recs.push_back(std::move(rec));
      buffer->clear();
    }
  }
  // Span ids are allocated at open time, so id order puts every parent
  // before its children and siblings in open order.
  std::sort(recs.begin(), recs.end(),
            [](const SpanRecord& a, const SpanRecord& b) { return a.id < b.id; });
  for (SpanRecord& rec : recs) {
    auto node = std::make_unique<TraceNode>();
    node->name = std::move(rec.name);
    node->detail = std::move(rec.detail);
    node->seconds = static_cast<double>(rec.dur_ns) * 1e-9;
    node->thread = rec.thread;
    node->attrs = std::move(rec.attrs);
    TraceNode* raw = node.get();
    auto it = index_.find(rec.parent);
    // Orphans (parent opened before the session, or already detached)
    // attach to the root rather than vanishing.
    TraceNode* parent = it != index_.end() ? it->second : root_.get();
    parent->children.push_back(std::move(node));
    index_[rec.id] = raw;
  }
}

const TraceNode& TraceSession::root() {
  Assemble();
  return *root_;
}

std::unique_ptr<TraceNode> TraceSession::Take() {
  Assemble();
  Uninstall();
  index_.clear();
  std::unique_ptr<TraceNode> out = std::move(root_);
  root_ = std::make_unique<TraceNode>();  // keep root() safe after Take
  return out;
}

// ---------------------------------------------------------------------------
// Span
// ---------------------------------------------------------------------------

void Span::Init(const char* name) {
  internal::TlsTrace& tls = internal::t_trace;
  bool in_session =
      tls.generation != 0 &&
      tls.generation ==
          internal::g_session_gen.load(std::memory_order_acquire);
  if (!in_session && !FlightRecorder::Global().armed()) return;
  rec_ = std::make_unique<SpanRecord>();
  rec_->id = internal::g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  rec_->parent = tls.parent_id;
  rec_->thread = internal::ThreadTag();
  rec_->name = name;
  tls.parent_id = rec_->id;
  start_ = std::chrono::steady_clock::now();
  rec_->start_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                       start_.time_since_epoch())
                       .count();
}

void Span::Finish() {
  internal::TlsTrace& tls = internal::t_trace;
  tls.parent_id = rec_->parent;
  rec_->dur_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                     std::chrono::steady_clock::now() - start_)
                     .count();
  FlightRecorder& flight = FlightRecorder::Global();
  bool session_took_it = false;
  if (tls.generation != 0 &&
      tls.generation ==
          internal::g_session_gen.load(std::memory_order_acquire)) {
    if (TraceSession* session = g_session.load(std::memory_order_acquire)) {
      if (flight.armed()) flight.Record(*rec_);  // copy; the session owns it
      session->Record(std::move(*rec_));
      session_took_it = true;
    }
  }
  if (!session_took_it && flight.armed()) flight.Record(std::move(*rec_));
  rec_.reset();
}

void Span::set_detail(std::string detail) {
  if (rec_ != nullptr) rec_->detail = std::move(detail);
}

void Span::Attr(const char* key, int64_t value) {
  if (rec_ != nullptr) rec_->attrs.emplace_back(key, value);
}

}  // namespace obs
}  // namespace strq
