#include "obs/trace.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace strq {
namespace obs {

namespace internal {

int ReadEnvFlagOnce() {
  const char* v = std::getenv("STRQ_OBS");
  int on = (v == nullptr || v[0] == '\0' || std::strcmp(v, "0") == 0) ? 0 : 1;
  g_enabled.store(on, std::memory_order_relaxed);
  return on;
}

}  // namespace internal

using internal::t_current;

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

void MetricsRegistry::Add(const std::string& name, int64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_[name] += delta;
}

int64_t MetricsRegistry::Get(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

std::map<std::string, int64_t> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
}

namespace internal {

void CountSlow(const char* name, int64_t delta) {
  MetricsRegistry::Global().Add(name, delta);
}

}  // namespace internal

std::map<std::string, int64_t> MetricsDelta(
    const std::map<std::string, int64_t>& before,
    const std::map<std::string, int64_t>& after) {
  std::map<std::string, int64_t> delta;
  for (const auto& [name, value] : after) {
    auto it = before.find(name);
    int64_t d = value - (it == before.end() ? 0 : it->second);
    if (d != 0) delta[name] = d;
  }
  return delta;
}

// ---------------------------------------------------------------------------
// TraceNode
// ---------------------------------------------------------------------------

const int64_t* TraceNode::FindAttr(const std::string& key) const {
  for (auto it = attrs.rbegin(); it != attrs.rend(); ++it) {
    if (it->first == key) return &it->second;
  }
  return nullptr;
}

int TraceNode::TreeSize() const {
  int total = 1;
  for (const auto& child : children) total += child->TreeSize();
  return total;
}

namespace {

void PrettyTraceInto(const TraceNode& node, int depth, std::string* out) {
  out->append(static_cast<size_t>(2 * depth), ' ');
  out->append(node.name);
  if (!node.detail.empty()) {
    out->push_back(' ');
    out->append(node.detail);
  }
  if (!node.attrs.empty()) {
    out->append("  [");
    for (size_t i = 0; i < node.attrs.size(); ++i) {
      if (i > 0) out->push_back(' ');
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%s=%lld", node.attrs[i].first.c_str(),
                    static_cast<long long>(node.attrs[i].second));
      out->append(buf);
    }
    out->push_back(']');
  }
  char time_buf[48];
  std::snprintf(time_buf, sizeof(time_buf), "  %.6fs", node.seconds);
  out->append(time_buf);
  out->push_back('\n');
  for (const auto& child : node.children) {
    PrettyTraceInto(*child, depth + 1, out);
  }
}

}  // namespace

std::string PrettyTrace(const TraceNode& root) {
  std::string out;
  PrettyTraceInto(root, 0, &out);
  return out;
}

// ---------------------------------------------------------------------------
// TraceSession / Span
// ---------------------------------------------------------------------------

TraceSession::TraceSession(std::string root_name)
    : root_(std::make_unique<TraceNode>()) {
  root_->name = std::move(root_name);
  if (t_current == nullptr) {
    saved_current_ = t_current;
    t_current = root_.get();
    installed_ = true;
  }
}

TraceSession::~TraceSession() {
  if (installed_) t_current = saved_current_;
}

std::unique_ptr<TraceNode> TraceSession::Take() {
  if (installed_) {
    t_current = saved_current_;
    installed_ = false;
  }
  return std::move(root_);
}

void Span::Init(const char* name) {
  parent_ = t_current;
  auto node = std::make_unique<TraceNode>();
  node->name = name;
  node_ = node.get();
  parent_->children.push_back(std::move(node));
  t_current = node_;
  start_ = std::chrono::steady_clock::now();
}

void Span::Finish() {
  node_->seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  t_current = parent_;
}

void Span::set_detail(std::string detail) {
  if (node_ != nullptr) node_->detail = std::move(detail);
}

void Span::Attr(const char* key, int64_t value) {
  if (node_ != nullptr) node_->attrs.emplace_back(key, value);
}

}  // namespace obs
}  // namespace strq
