#ifndef STRQ_OBS_HISTOGRAM_H_
#define STRQ_OBS_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace strq {
namespace obs {

// A log-linear histogram of non-negative integer samples (latencies in
// nanoseconds, byte sizes): values below 16 get exact unit buckets, larger
// values get 16 sub-buckets per power of two, so the relative quantile error
// is bounded by 1/16 ≈ 6% across the whole int64 range while the bucket
// array stays under a thousand entries. This is the classic HDR-style layout
// serving systems use for p50/p99 tracking — O(1) insert, no stored samples.
//
// The class itself is not synchronized; MetricsRegistry guards its
// histograms with the registry mutex.
class Histogram {
 public:
  // Adds one sample. Negative values clamp to 0 (callers pass elapsed
  // times; a clock hiccup must not crash the bucket math).
  void Observe(int64_t value);

  int64_t count() const { return count_; }
  int64_t min() const { return count_ == 0 ? 0 : min_; }
  int64_t max() const { return max_; }
  double sum() const { return sum_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / count_; }

  // Quantile estimate for q in [0, 1]: walks the cumulative bucket counts
  // and interpolates linearly inside the holding bucket, clamped to the
  // observed [min, max]. Returns 0 on an empty histogram.
  double Quantile(double q) const;

  // A point-in-time summary, the form serialized into strq.explain.v1 /
  // strq.bench.v1 documents and printed by the shell's `stats`.
  struct Snapshot {
    int64_t count = 0;
    int64_t min = 0;
    int64_t max = 0;
    double mean = 0.0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
  };
  Snapshot TakeSnapshot() const;

  void Reset();

  // Bucket index for a value — exposed for the bucket-math tests.
  static int BucketIndex(int64_t value);
  // Inclusive [lower, upper] value range of a bucket index.
  static void BucketBounds(int index, int64_t* lower, int64_t* upper);

 private:
  std::vector<int64_t> buckets_;  // grown on demand, indexed by BucketIndex
  int64_t count_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
  double sum_ = 0.0;
};

}  // namespace obs
}  // namespace strq

#endif  // STRQ_OBS_HISTOGRAM_H_
