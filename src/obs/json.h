#ifndef STRQ_OBS_JSON_H_
#define STRQ_OBS_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "base/status.h"
#include "obs/trace.h"

namespace strq {
namespace obs {

// A small self-contained JSON document model (no external dependencies):
// enough for the EXPLAIN ANALYZE serializer, the bench harness, and the
// smoke validator. Objects preserve insertion order so emitted files diff
// cleanly across runs.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kInt, kString, kArray, kObject };

  JsonValue() : kind_(Kind::kNull) {}

  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool v);
  static JsonValue Number(double v);
  // A distinct integer kind: emitted as an exact decimal literal, so int64
  // values above 2^53 (span ids, byte counters on large stores) round-trip
  // without the double mantissa truncating them.
  static JsonValue Int(int64_t v);
  static JsonValue Str(std::string v);
  static JsonValue Array();
  static JsonValue Object();

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const {
    return kind_ == Kind::kNumber || kind_ == Kind::kInt;
  }
  bool is_int() const { return kind_ == Kind::kInt; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool AsBool() const { return bool_; }
  double AsNumber() const {
    return kind_ == Kind::kInt ? static_cast<double>(int_) : number_;
  }
  // Exact for kInt; kNumber values are truncated toward zero.
  int64_t AsInt64() const {
    return kind_ == Kind::kInt ? int_ : static_cast<int64_t>(number_);
  }
  const std::string& AsString() const { return string_; }

  // Array/object element count (0 for scalars).
  size_t size() const;

  // Array access.
  JsonValue& Append(JsonValue v);  // returns the appended element
  const JsonValue& At(size_t i) const { return items_[i]; }

  // Object access. Set overwrites an existing key in place.
  JsonValue& Set(std::string key, JsonValue v);
  const JsonValue* Find(const std::string& key) const;
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  // Serialization. indent < 0 renders compact on one line; indent >= 0
  // pretty-prints with that many spaces per level.
  std::string Dump(int indent = -1) const;

 private:
  void DumpInto(int indent, int depth, std::string* out) const;

  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  int64_t int_ = 0;
  std::string string_;
  std::vector<JsonValue> items_;                            // kArray
  std::vector<std::pair<std::string, JsonValue>> members_;  // kObject
};

// Strict-enough recursive-descent parser (objects, arrays, strings with
// \uXXXX escapes, numbers, true/false/null). Trailing garbage is an error.
Result<JsonValue> ParseJson(const std::string& text);

// Serializers for the tracing layer.
//   {"name": ..., "detail": ..., "seconds": ..., "attrs": {...},
//    "children": [...]}
// Empty detail/attrs/children are omitted.
JsonValue TraceToJson(const TraceNode& node);
JsonValue MetricsToJson(const std::map<std::string, int64_t>& metrics);
// {"query.latency_ns": {"count": ..., "min": ..., "max": ..., "mean": ...,
//  "p50": ..., "p90": ..., "p99": ...}, ...} — one member per histogram.
JsonValue HistogramsToJson(
    const std::map<std::string, Histogram::Snapshot>& hists);

}  // namespace obs
}  // namespace strq

#endif  // STRQ_OBS_JSON_H_
