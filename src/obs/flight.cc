#include "obs/flight.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace strq {
namespace obs {

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* recorder = new FlightRecorder();
  return *recorder;
}

FlightRecorder::FlightRecorder() {
  size_t total = 4096;
  if (const char* env = std::getenv("STRQ_FLIGHT_CAPACITY")) {
    long v = std::strtol(env, nullptr, 10);
    if (v > 0) total = static_cast<size_t>(v);
  }
  shard_capacity_ = std::max<size_t>(1, total / kShards);
}

void FlightRecorder::Record(SpanRecord rec) {
  Shard& shard = shards_[internal::ThreadTag() % kShards];
  std::lock_guard<std::mutex> lock(shard.mu);
  ++shard.recorded;
  if (shard.ring.size() < shard_capacity_) {
    shard.ring.push_back(std::move(rec));
    return;
  }
  shard.ring[shard.next] = std::move(rec);
  shard.next = (shard.next + 1) % shard_capacity_;
}

size_t FlightRecorder::size() const {
  size_t n = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    n += shard.ring.size();
  }
  return n;
}

uint64_t FlightRecorder::total_recorded() const {
  uint64_t n = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    n += shard.recorded;
  }
  return n;
}

void FlightRecorder::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.ring.clear();
    shard.next = 0;
  }
}

std::vector<SpanRecord> FlightRecorder::Snapshot() const {
  std::vector<SpanRecord> out;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    out.insert(out.end(), shard.ring.begin(), shard.ring.end());
  }
  std::sort(out.begin(), out.end(),
            [](const SpanRecord& a, const SpanRecord& b) { return a.id < b.id; });
  return out;
}

JsonValue ChromeTrace(const std::vector<SpanRecord>& spans) {
  JsonValue doc = JsonValue::Object();
  JsonValue events = JsonValue::Array();
  for (const SpanRecord& span : spans) {
    JsonValue e = JsonValue::Object();
    e.Set("name", JsonValue::Str(span.name));
    e.Set("cat", JsonValue::Str("strq"));
    e.Set("ph", JsonValue::Str("X"));  // complete event: ts + dur
    e.Set("ts", JsonValue::Number(static_cast<double>(span.start_ns) / 1e3));
    e.Set("dur", JsonValue::Number(static_cast<double>(span.dur_ns) / 1e3));
    e.Set("pid", JsonValue::Int(1));
    e.Set("tid", JsonValue::Int(span.thread));
    JsonValue args = JsonValue::Object();
    args.Set("span_id", JsonValue::Int(static_cast<int64_t>(span.id)));
    args.Set("parent_id", JsonValue::Int(static_cast<int64_t>(span.parent)));
    if (!span.detail.empty()) args.Set("detail", JsonValue::Str(span.detail));
    for (const auto& [key, value] : span.attrs) {
      args.Set(key, JsonValue::Int(value));
    }
    e.Set("args", std::move(args));
    events.Append(std::move(e));
  }
  doc.Set("traceEvents", std::move(events));
  doc.Set("displayTimeUnit", JsonValue::Str("ms"));
  return doc;
}

std::string PrettyFlight(const std::vector<SpanRecord>& spans) {
  std::string out;
  char buf[128];
  for (const SpanRecord& span : spans) {
    std::snprintf(buf, sizeof(buf), "#%llu t%u %10.3fus  ",
                  static_cast<unsigned long long>(span.id), span.thread,
                  static_cast<double>(span.dur_ns) / 1e3);
    out += buf;
    out += span.name;
    if (!span.detail.empty()) {
      out += ' ';
      out += span.detail;
    }
    out += '\n';
  }
  return out;
}

}  // namespace obs
}  // namespace strq
