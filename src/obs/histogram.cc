#include "obs/histogram.h"

#include <algorithm>

namespace strq {
namespace obs {

namespace {

// Sub-buckets per power of two above the linear range. 16 bounds the
// relative bucket width (hence the quantile error) by 1/16.
constexpr int kSub = 16;

// floor(log2(v)) for v >= 1.
int FloorLog2(int64_t v) {
  int o = 0;
  while (v > 1) {
    v >>= 1;
    ++o;
  }
  return o;
}

}  // namespace

int Histogram::BucketIndex(int64_t value) {
  if (value < 0) value = 0;
  if (value < kSub) return static_cast<int>(value);
  int o = FloorLog2(value);
  // Mantissa with kSub precision: (value >> (o - 4)) lands in [16, 31], and
  // consecutive octaves tile the index space contiguously from 16 upward.
  return (o - 4) * kSub + static_cast<int>(value >> (o - 4));
}

void Histogram::BucketBounds(int index, int64_t* lower, int64_t* upper) {
  if (index < kSub) {
    *lower = index;
    *upper = index;
    return;
  }
  int o = (index - kSub) / kSub + 4;
  int64_t m = kSub + (index - kSub) % kSub;
  *lower = m << (o - 4);
  *upper = *lower + ((int64_t{1} << (o - 4)) - 1);
}

void Histogram::Observe(int64_t value) {
  if (value < 0) value = 0;
  int idx = BucketIndex(value);
  if (idx >= static_cast<int>(buckets_.size())) {
    buckets_.resize(static_cast<size_t>(idx) + 1, 0);
  }
  ++buckets_[static_cast<size_t>(idx)];
  if (count_ == 0 || value < min_) min_ = value;
  if (value > max_) max_ = value;
  ++count_;
  sum_ += static_cast<double>(value);
}

double Histogram::Quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank in [0, count): the sample a sorted array would hold at this
  // position, interpolated inside its bucket.
  double rank = q * static_cast<double>(count_ - 1);
  int64_t cum = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    int64_t c = buckets_[i];
    if (c == 0) continue;
    if (rank < static_cast<double>(cum + c)) {
      int64_t lower, upper;
      BucketBounds(static_cast<int>(i), &lower, &upper);
      double within = (rank - static_cast<double>(cum) + 0.5) /
                      static_cast<double>(c);
      double v = static_cast<double>(lower) +
                 within * static_cast<double>(upper - lower);
      return std::clamp(v, static_cast<double>(min_),
                        static_cast<double>(max_));
    }
    cum += c;
  }
  return static_cast<double>(max_);
}

Histogram::Snapshot Histogram::TakeSnapshot() const {
  Snapshot s;
  s.count = count_;
  s.min = min();
  s.max = max_;
  s.mean = mean();
  s.p50 = Quantile(0.50);
  s.p90 = Quantile(0.90);
  s.p99 = Quantile(0.99);
  return s;
}

void Histogram::Reset() {
  buckets_.clear();
  count_ = 0;
  min_ = 0;
  max_ = 0;
  sum_ = 0.0;
}

}  // namespace obs
}  // namespace strq
