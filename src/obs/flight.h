#ifndef STRQ_OBS_FLIGHT_H_
#define STRQ_OBS_FLIGHT_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "obs/json.h"
#include "obs/trace.h"

namespace strq {
namespace obs {

// Always-on bounded record of recently completed spans — the "what was the
// engine doing just before X" tool a serving process needs when no trace
// session was installed at the time. Spans land here whenever tracing is
// Enabled() and the recorder is armed (the default), with or without a
// TraceSession; the buffer is a fixed-size ring, so steady-state cost is a
// handful of relaxed atomics plus one short shard-lock hold per completed
// span, and memory stays bounded no matter how long the process runs.
//
// The ring is sharded by thread tag: concurrent writers from pool workers
// hit different locks, and a snapshot re-sorts by span id (= open order)
// across shards. Capacity is split evenly across shards, total capacity
// from STRQ_FLIGHT_CAPACITY (default 4096 spans).
class FlightRecorder {
 public:
  static FlightRecorder& Global();

  // Armed is a raw switch; it only takes effect while obs::Enabled() is
  // true, so a disabled process pays nothing. Defaults to armed.
  bool armed() const { return armed_.load(std::memory_order_relaxed); }
  void set_armed(bool on) { armed_.store(on, std::memory_order_relaxed); }

  // Appends one completed span, overwriting the oldest record of the
  // calling thread's shard once the ring is full.
  void Record(SpanRecord rec);

  // Spans currently retained / ever recorded / total ring capacity.
  size_t size() const;
  uint64_t total_recorded() const;
  size_t capacity() const { return shard_capacity_ * kShards; }

  void Clear();

  // The retained spans, oldest first (sorted by span id across shards).
  std::vector<SpanRecord> Snapshot() const;

 private:
  FlightRecorder();

  static constexpr int kShards = 8;
  struct Shard {
    mutable std::mutex mu;
    std::vector<SpanRecord> ring;  // grows to shard_capacity_, then wraps
    size_t next = 0;               // overwrite cursor once full
    uint64_t recorded = 0;
  };

  std::atomic<bool> armed_{true};
  size_t shard_capacity_;
  Shard shards_[kShards];
};

// Renders spans (typically FlightRecorder::Snapshot()) as a Chrome
// trace-event document: {"traceEvents": [{"ph": "X", ...}, ...]}. Load the
// dump in Perfetto (ui.perfetto.dev) or chrome://tracing to see the spans
// on a per-thread timeline. Timestamps are microseconds on the process
// steady clock; thread tags map to tids.
JsonValue ChromeTrace(const std::vector<SpanRecord>& spans);

// One line per span, newest last — the shell's `flight` dump format.
std::string PrettyFlight(const std::vector<SpanRecord>& spans);

}  // namespace obs
}  // namespace strq

#endif  // STRQ_OBS_FLIGHT_H_
