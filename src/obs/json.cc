#include "obs/json.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace strq {
namespace obs {

JsonValue JsonValue::Bool(bool v) {
  JsonValue j;
  j.kind_ = Kind::kBool;
  j.bool_ = v;
  return j;
}

JsonValue JsonValue::Number(double v) {
  JsonValue j;
  j.kind_ = Kind::kNumber;
  j.number_ = v;
  return j;
}

JsonValue JsonValue::Int(int64_t v) {
  JsonValue j;
  j.kind_ = Kind::kInt;
  j.int_ = v;
  return j;
}

JsonValue JsonValue::Str(std::string v) {
  JsonValue j;
  j.kind_ = Kind::kString;
  j.string_ = std::move(v);
  return j;
}

JsonValue JsonValue::Array() {
  JsonValue j;
  j.kind_ = Kind::kArray;
  return j;
}

JsonValue JsonValue::Object() {
  JsonValue j;
  j.kind_ = Kind::kObject;
  return j;
}

size_t JsonValue::size() const {
  if (kind_ == Kind::kArray) return items_.size();
  if (kind_ == Kind::kObject) return members_.size();
  return 0;
}

JsonValue& JsonValue::Append(JsonValue v) {
  items_.push_back(std::move(v));
  return items_.back();
}

JsonValue& JsonValue::Set(std::string key, JsonValue v) {
  for (auto& [k, existing] : members_) {
    if (k == key) {
      existing = std::move(v);
      return existing;
    }
  }
  members_.emplace_back(std::move(key), std::move(v));
  return members_.back().second;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

void EscapeInto(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out->append(buf);
        } else {
          out->push_back(c);  // UTF-8 bytes pass through unchanged
        }
    }
  }
  out->push_back('"');
}

void NumberInto(double v, std::string* out) {
  if (!std::isfinite(v)) {
    // JSON has no Inf/NaN; null is the conventional stand-in.
    out->append("null");
    return;
  }
  double rounded = std::nearbyint(v);
  if (rounded == v && std::fabs(v) < 9.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(rounded));
    out->append(buf);
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out->append(buf);
}

}  // namespace

void JsonValue::DumpInto(int indent, int depth, std::string* out) const {
  const bool pretty = indent >= 0;
  auto newline_pad = [&](int d) {
    if (!pretty) return;
    out->push_back('\n');
    out->append(static_cast<size_t>(indent * d), ' ');
  };
  switch (kind_) {
    case Kind::kNull:
      out->append("null");
      return;
    case Kind::kBool:
      out->append(bool_ ? "true" : "false");
      return;
    case Kind::kNumber:
      NumberInto(number_, out);
      return;
    case Kind::kInt: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(int_));
      out->append(buf);
      return;
    }
    case Kind::kString:
      EscapeInto(string_, out);
      return;
    case Kind::kArray: {
      if (items_.empty()) {
        out->append("[]");
        return;
      }
      out->push_back('[');
      for (size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out->push_back(',');
        newline_pad(depth + 1);
        items_[i].DumpInto(indent, depth + 1, out);
      }
      newline_pad(depth);
      out->push_back(']');
      return;
    }
    case Kind::kObject: {
      if (members_.empty()) {
        out->append("{}");
        return;
      }
      out->push_back('{');
      for (size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out->push_back(',');
        newline_pad(depth + 1);
        EscapeInto(members_[i].first, out);
        out->append(pretty ? ": " : ":");
        members_[i].second.DumpInto(indent, depth + 1, out);
      }
      newline_pad(depth);
      out->push_back('}');
      return;
    }
  }
}

std::string JsonValue::Dump(int indent) const {
  std::string out;
  DumpInto(indent, 0, &out);
  return out;
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    STRQ_ASSIGN_OR_RETURN(JsonValue v, ParseValue());
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON value");
    }
    return v;
  }

 private:
  Status Error(const std::string& message) const {
    return InvalidArgumentError("JSON parse error at offset " +
                                std::to_string(pos_) + ": " + message);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue() {
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') {
      STRQ_ASSIGN_OR_RETURN(std::string s, ParseString());
      return JsonValue::Str(std::move(s));
    }
    if (c == 't' || c == 'f' || c == 'n') return ParseKeyword();
    if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber();
    return Error(std::string("unexpected character '") + c + "'");
  }

  Result<JsonValue> ParseKeyword() {
    auto match = [&](const char* word) {
      size_t len = std::string(word).size();
      if (text_.compare(pos_, len, word) == 0) {
        pos_ += len;
        return true;
      }
      return false;
    };
    if (match("true")) return JsonValue::Bool(true);
    if (match("false")) return JsonValue::Bool(false);
    if (match("null")) return JsonValue::Null();
    return Error("invalid keyword");
  }

  Result<JsonValue> ParseNumber() {
    size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() && std::isdigit(
               static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
      return Error("invalid number");
    }
    bool integral = true;
    if (Consume('.')) {
      integral = false;
      size_t frac = pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      if (pos_ == frac) return Error("digits expected after decimal point");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      size_t exp = pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      if (pos_ == exp) return Error("digits expected in exponent");
    }
    std::string literal = text_.substr(start, pos_ - start);
    if (integral) {
      // Pure integer literals parse through strtoll so values above 2^53
      // (e.g. INT64_MAX byte counters) round-trip exactly; out-of-range
      // literals fall back to the double path below.
      errno = 0;
      char* end = nullptr;
      long long v = std::strtoll(literal.c_str(), &end, 10);
      if (errno != ERANGE && end != nullptr && *end == '\0') {
        return JsonValue::Int(static_cast<int64_t>(v));
      }
    }
    return JsonValue::Number(std::strtod(literal.c_str(), nullptr));
  }

  Result<std::string> ParseString() {
    if (!Consume('"')) return Error("'\"' expected");
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        char esc = text_[pos_++];
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return Error("invalid hex digit in \\u escape");
              }
            }
            // UTF-8 encode (surrogate pairs are passed through individually;
            // the tracer never emits them).
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            return Error("invalid escape character");
        }
      } else {
        out.push_back(c);
      }
    }
    return Error("unterminated string");
  }

  Result<JsonValue> ParseArray() {
    if (!Consume('[')) return Error("'[' expected");
    JsonValue out = JsonValue::Array();
    SkipWhitespace();
    if (Consume(']')) return out;
    while (true) {
      STRQ_ASSIGN_OR_RETURN(JsonValue v, ParseValue());
      out.Append(std::move(v));
      SkipWhitespace();
      if (Consume(']')) return out;
      if (!Consume(',')) return Error("',' or ']' expected");
    }
  }

  Result<JsonValue> ParseObject() {
    if (!Consume('{')) return Error("'{' expected");
    JsonValue out = JsonValue::Object();
    SkipWhitespace();
    if (Consume('}')) return out;
    while (true) {
      SkipWhitespace();
      STRQ_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Error("':' expected");
      STRQ_ASSIGN_OR_RETURN(JsonValue v, ParseValue());
      out.Set(std::move(key), std::move(v));
      SkipWhitespace();
      if (Consume('}')) return out;
      if (!Consume(',')) return Error("',' or '}' expected");
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(const std::string& text) {
  return Parser(text).Parse();
}

JsonValue TraceToJson(const TraceNode& node) {
  JsonValue out = JsonValue::Object();
  out.Set("name", JsonValue::Str(node.name));
  if (!node.detail.empty()) out.Set("detail", JsonValue::Str(node.detail));
  out.Set("seconds", JsonValue::Number(node.seconds));
  if (node.thread != 0) out.Set("thread", JsonValue::Int(node.thread));
  if (!node.attrs.empty()) {
    JsonValue attrs = JsonValue::Object();
    for (const auto& [key, value] : node.attrs) {
      attrs.Set(key, JsonValue::Int(value));
    }
    out.Set("attrs", std::move(attrs));
  }
  if (!node.children.empty()) {
    JsonValue children = JsonValue::Array();
    for (const auto& child : node.children) {
      children.Append(TraceToJson(*child));
    }
    out.Set("children", std::move(children));
  }
  return out;
}

JsonValue MetricsToJson(const std::map<std::string, int64_t>& metrics) {
  JsonValue out = JsonValue::Object();
  for (const auto& [name, value] : metrics) {
    out.Set(name, JsonValue::Int(value));
  }
  return out;
}

JsonValue HistogramsToJson(
    const std::map<std::string, Histogram::Snapshot>& hists) {
  JsonValue out = JsonValue::Object();
  for (const auto& [name, snap] : hists) {
    JsonValue h = JsonValue::Object();
    h.Set("count", JsonValue::Int(snap.count));
    h.Set("min", JsonValue::Int(snap.min));
    h.Set("max", JsonValue::Int(snap.max));
    h.Set("mean", JsonValue::Number(snap.mean));
    h.Set("p50", JsonValue::Number(snap.p50));
    h.Set("p90", JsonValue::Number(snap.p90));
    h.Set("p99", JsonValue::Number(snap.p99));
    out.Set(name, std::move(h));
  }
  return out;
}

}  // namespace obs
}  // namespace strq
