#include "concat/concat_eval.h"

#include "base/budget.h"
#include "base/string_ops.h"
#include "eval/restricted_eval.h"
#include "obs/trace.h"

namespace strq {

namespace {

RestrictedEvaluator MakeBounded(const Database* db, int bound) {
  RestrictedEvaluator::Options options;
  options.all_quantifier_bound = bound;
  return RestrictedEvaluator(db, options);
}

}  // namespace

Result<bool> ConcatEvaluator::EvaluateSentenceBounded(const FormulaPtr& f,
                                                      int bound) {
  obs::Span span("concat.sentence_bounded");
  span.Attr("bound", bound);
  obs::Count(obs::kConcatBoundedRounds);
  // Bounded-evaluation rounds are this engine's natural deadline poll
  // points (each round can be exponentially bigger than the last); the
  // inner restricted evaluator polls at candidate granularity too.
  STRQ_RETURN_IF_ERROR(CheckDeadline());
  RestrictedEvaluator eval = MakeBounded(db_, bound);
  return eval.EvaluateSentence(f);
}

Result<Relation> ConcatEvaluator::EvaluateBounded(const FormulaPtr& f,
                                                  int bound) {
  obs::Span span("concat.evaluate_bounded");
  span.Attr("bound", bound);
  obs::Count(obs::kConcatBoundedRounds);
  STRQ_RETURN_IF_ERROR(CheckDeadline());
  RestrictedEvaluator eval = MakeBounded(db_, bound);
  std::string chars;
  for (int i = 0; i < db_->alphabet().size(); ++i) {
    chars.push_back(db_->alphabet().CharOf(static_cast<Symbol>(i)));
  }
  return eval.EvaluateOnCandidates(f, AllStringsUpToLength(chars, bound));
}

Result<std::optional<int>> ConcatEvaluator::FindWitnessBound(
    const FormulaPtr& f, int max_bound) {
  for (int bound = 0; bound <= max_bound; ++bound) {
    STRQ_ASSIGN_OR_RETURN(bool value, EvaluateSentenceBounded(f, bound));
    if (value) return std::optional<int>(bound);
  }
  return std::optional<int>();
}

FormulaPtr SquareOfRelationQuery(const std::string& relation) {
  // φ(x) ≡ ∃w (R(w) ∧ x = w·w).
  return FExists("w", FAnd(FRelation(relation, {TVar("w")}),
                           FPred(PredKind::kEq,
                                 {TVar("x"),
                                  TConcat(TVar("w"), TVar("w"))})));
}

}  // namespace strq
