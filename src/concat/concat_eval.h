#ifndef STRQ_CONCAT_CONCAT_EVAL_H_
#define STRQ_CONCAT_CONCAT_EVAL_H_

#include <optional>

#include "base/status.h"
#include "logic/ast.h"
#include "relational/database.h"

namespace strq {

// RC_concat (Section 3): relational calculus with string concatenation.
//
// Proposition 1: over any alphabet with ≥ 2 letters, RC_concat expresses
// every computable query; Corollary 1: its safe fragment has no effective
// syntax and state-safety is undecidable. Consequently there is no exact
// evaluator here — concatenation is not an automatic relation, so the
// multi-track engine rejects it (kUnsupported), and the best possible
// general-purpose device is *bounded-universe* evaluation: quantifiers
// range over Σ^{≤bound}. Existential truth is thereby semi-decided
// (a witness found at some bound is a witness, period), while universal
// truth over Σ* is never certified.
class ConcatEvaluator {
 public:
  explicit ConcatEvaluator(const Database* db) : db_(db) {}

  // Truth under the bounded universe Σ^{≤bound}.
  Result<bool> EvaluateSentenceBounded(const FormulaPtr& f, int bound);

  // Output tuples with components from Σ^{≤bound} (bounded semantics).
  Result<Relation> EvaluateBounded(const FormulaPtr& f, int bound);

  // Iterative deepening for purely existential prefixes: returns the first
  // bound at which the sentence becomes true, or nullopt if none up to
  // max_bound (which proves nothing — Proposition 1's undecidability in
  // action).
  Result<std::optional<int>> FindWitnessBound(const FormulaPtr& f,
                                              int max_bound);

 private:
  const Database* db_;
};

// The query family used by the Proposition 1 bench: φ_n(x) ≡ "x = w·w for
// some w with R(w)" — expressible only with concatenation; the bounded
// evaluator's cost grows with the bound while the tame engines are not
// applicable at all.
FormulaPtr SquareOfRelationQuery(const std::string& relation);

}  // namespace strq

#endif  // STRQ_CONCAT_CONCAT_EVAL_H_
