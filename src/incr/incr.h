#ifndef STRQ_INCR_INCR_H_
#define STRQ_INCR_INCR_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "base/status.h"
#include "eval/automata_eval.h"
#include "eval/restricted_eval.h"
#include "logic/ast.h"
#include "mta/atom_cache.h"
#include "mta/track_automaton.h"
#include "plan/planner.h"
#include "relational/snapshot.h"

namespace strq {
namespace incr {

// Policy knobs for the incremental index. The defaults favor patching:
// store ops on interned handles make a patch's union/difference products
// cheap, and canonical minimization keeps every patched automaton identical
// to what a fresh recompile would intern.
struct Options {
  // A trie-level delta wider than this recompiles from tuples instead of
  // patching (building the delta trie itself approaches the full rebuild).
  int max_patch_ops = 256;
  // Fold pending deltas into a new base (a "compaction": the base anchor
  // advances to the patched automaton and the replay window resets) once
  // the delta automata carry more than this fraction of the base's states,
  // or the replay window exceeds max_patch_ops/2 ops.
  double compact_ratio = 0.5;
  // Cap on distinct formulas with maintained answers; the map is cleared
  // wholesale when exceeded (entries re-seed on the next compile).
  size_t max_answer_entries = 256;
};

struct Stats {
  int64_t patches = 0;          // tries/answers patched with a delta
  int64_t recompiles = 0;       // full-rebuild fallbacks
  int64_t compactions = 0;      // delta folds re-anchoring a base
  int64_t unchanged_hits = 0;   // empty delta window: old automaton reused
  int64_t answer_patches = 0;   // subset of `patches` at the answer level
  int64_t answer_hits = 0;      // answer served at its maintained revision
};

// The delta-maintenance subsystem between relational/snapshot and the
// mta/automata substrate (ROADMAP item 2).
//
// One index watches one VersionedDatabase (wire OnCommit via SetCommitHook)
// and serves three layers of incrementally-maintained state, all anchored
// on the MVCC revision chain:
//
//  * Table tries (TrieProvider): a relation's trie at revision r is served
//    as base-trie @ r₀ patched with the replayed tuple deltas (r₀..r] —
//    Difference for retractions, Union for insertions — instead of a
//    FromTuples rebuild. Patched tries are installed in the shared
//    AtomCache under the same "rel:<name>:<rev>" keys the compilers look
//    up, so eviction and cross-session sharing work unchanged.
//  * Active domain and its prefix closure (TrieProvider for Engine A's
//    adom/prefixdom automata, DomainProvider for Engine B's candidate
//    sets): multiplicity-refcounted under inserts/deletes, so a commit
//    updates them in O(delta) instead of rescanning every relation.
//  * Answer automata (CompileAnswer): compiled answers for cached plans
//    are maintained as (base ∪ delta ∖ retract) — single-atom queries are
//    spliced directly; linear-positive queries under insert-only deltas
//    gain Union(answer, Q[δ]) via a delta compile; everything else
//    recompiles over the (already patched) tries. Planner::AdvisePatch
//    arbitrates patch vs recompile from recorded actual sizes and store
//    stats.
//
// Identity invariant: every patch routes through the interned store, whose
// results are canonically minimized, so a patched automaton has the SAME
// canonical id as a fresh recompile of the same contents — answers, store
// ids and IsSafe verdicts are invariant across the patch/recompile choice
// (the differential fuzz in tests/incr asserts this at every step).
//
// Thread-safe. Falls back to full recompilation whenever the delta chain
// is not replayable (opaque commits, bounded-log truncation, pre-base
// pinned snapshots), so correctness never depends on the log's coverage.
class IncrementalIndex : public TrieProvider, public DomainProvider {
 public:
  // `db` must outlive the index. `cache` supplies the alphabet, the store
  // and the shared trie keyspace; `planner` supplies patch advice (null:
  // a private default planner).
  IncrementalIndex(const VersionedDatabase* db,
                   std::shared_ptr<AtomCache> cache,
                   std::shared_ptr<plan::Planner> planner,
                   Options options = Options());

  // Commit subscription (VersionedDatabase::SetCommitHook target): keeps
  // the domain refcounts synced. Tuple commits apply in O(delta); opaque
  // commits (AddRelation / arbitrary Update) trigger a head rescan.
  void OnCommit(const CommitDelta& delta);

  // --- TrieProvider (Engine A) -------------------------------------------
  Result<TrackAutomaton> RelationTrie(const Database& db,
                                      const std::string& name,
                                      const std::vector<VarId>& vars) override;
  Result<TrackAutomaton> AdomTrie(const Database& db, VarId var) override;
  Result<TrackAutomaton> PrefixDomTrie(const Database& db, VarId var) override;

  // --- DomainProvider (Engine B) -----------------------------------------
  std::optional<std::vector<std::string>> ActiveDomainAt(
      int64_t revision) const override;
  std::optional<std::vector<std::string>> PrefixClosureAt(
      int64_t revision) const override;
  // Trie views over the same refcounted keys, memoized per head revision
  // (sessions pinned to older snapshots get null and rebuild locally from
  // their snapshot — the flat accessors degrade the same way).
  std::shared_ptr<const DomainTrie> AdomTrieAt(int64_t revision) const override;
  std::shared_ptr<const DomainTrie> PrefixTrieAt(
      int64_t revision) const override;

  // --- Answer maintenance ------------------------------------------------
  // The answer automaton for `f` against `db` (a snapshot of the watched
  // VersionedDatabase), maintained across revisions. `eval` performs any
  // full or delta compiles needed and should share this index's cache and
  // planner (the serving layer passes its session evaluator).
  Result<TrackAutomaton> CompileAnswer(AutomataEvaluator& eval,
                                       const FormulaPtr& f,
                                       const Database& db);

  Stats stats() const;
  const Options& options() const { return options_; }

 private:
  // A maintained base automaton anchored at one revision; patches replay
  // the delta window (rev, target] on top of it.
  struct BaseState {
    int64_t rev = -1;
    std::optional<TrackAutomaton> base;
  };

  // Net domain change of one commit: strings entering/leaving adom(D) and
  // prefixes entering/leaving its closure.
  struct DomDelta {
    int64_t from_revision = 0;
    int64_t to_revision = 0;
    std::vector<std::string> added, removed;      // adom strings
    std::vector<std::string> p_added, p_removed;  // closure prefixes
  };

  struct AnswerEntry {
    FormulaPtr formula;  // collision guard under the structural hash
    int64_t rev = -1;
    std::optional<TrackAutomaton> answer;
    int64_t base_states = 0;   // at last full compile / compaction
    int64_t delta_states = 0;  // delta automata states since then
    // Patchability analysis of the original formula (computed once):
    bool adom_free = true;      // no kAdom atom, no restricted ranges
    std::map<std::string, int> occurrences;           // per relation
    std::map<std::string, int> positive_occurrences;  // on ∪-distributive paths
    bool bare_atom = false;     // f = R(x₁..x_k), distinct variable args
    std::string bare_atom_rel;
    std::vector<int> bare_perm;  // answer column j = relation column perm[j]
  };

  // Net tuple effect of a replayed delta window, per relation.
  struct NetDelta {
    std::map<std::string, std::vector<Tuple>> adds, dels;
    int64_t total_ops = 0;
  };

  // Folds a replayed op list into net adds/dels (an insert cancels a prior
  // delete of the same tuple and vice versa; the log only records
  // effective ops, so multiplicities never exceed one).
  static NetDelta NetOf(const std::vector<TupleDelta>& ops);

  // (base ∖ dels) ∪ adds over canonical variables, through the store.
  // `delta_states` accumulates the delta tries' state counts.
  Result<TrackAutomaton> ApplyPatch(const TrackAutomaton& base,
                                    const std::vector<Tuple>& adds,
                                    const std::vector<Tuple>& dels,
                                    int64_t* delta_states);

  // Should the replay window folded into `st` be compacted (base
  // re-anchored to `patched`)? Counts the compaction if so.
  bool MaybeCompact(BaseState* st, const TrackAutomaton& patched,
                    int64_t target_rev, int64_t window_ops,
                    int64_t delta_states);

  // Builders behind the AtomCache single-flight (canonical variables).
  Result<TrackAutomaton> BuildRelationTrie(const Database& db,
                                           const std::string& name);
  Result<TrackAutomaton> BuildDomTrie(const Database& db, bool prefixes);

  Result<TrackAutomaton> FromTuplesVars(const std::vector<VarId>& vars,
                                        const std::vector<Tuple>& tuples);

  // Domain refcount bookkeeping (mu_ held).
  void SeedDomLocked(const Database& db);
  void ApplyDomOpsLocked(const CommitDelta& delta);
  // Net adom (or closure) change along (from, to], or nullopt if the dom
  // log cannot replay that window.
  std::optional<std::pair<std::vector<std::string>, std::vector<std::string>>>
  DomNetBetweenLocked(int64_t from, int64_t to, bool prefixes) const;

  static void AnalyzeFormula(const FormulaPtr& f, bool positive_path,
                             AnswerEntry* e);

  void CountPatch(int64_t ns, bool answer_level);
  void CountRecompile();
  void CountUnchanged();

  const VersionedDatabase* db_;
  std::shared_ptr<AtomCache> cache_;
  std::shared_ptr<plan::Planner> planner_;
  Options options_;

  mutable std::mutex mu_;  // tries + domain state
  std::map<std::string, BaseState> rels_;
  BaseState adom_base_, prefix_base_;
  // Domain refcounts, synced to head revision dom_rev_ while dom_valid_:
  // counts_[s] = occurrences of s across all tuples; prefix_counts_[p] =
  // distinct adom strings with prefix p (so keys(prefix_counts_) IS the
  // closure, ε included iff adom non-empty).
  bool dom_valid_ = false;
  int64_t dom_rev_ = -1;
  std::map<std::string, int64_t> counts_;
  std::map<std::string, int64_t> prefix_counts_;
  static constexpr size_t kMaxDomLog = 128;
  std::deque<DomDelta> dom_log_;
  // Memoized head-revision trie views of counts_/prefix_counts_ (mu_ held;
  // stale revisions are dropped, the tries themselves stay alive through
  // the shared_ptrs pinned sessions already hold).
  mutable std::shared_ptr<const DomainTrie> adom_trie_view_;
  mutable int64_t adom_trie_rev_ = -1;
  mutable std::shared_ptr<const DomainTrie> prefix_trie_view_;
  mutable int64_t prefix_trie_rev_ = -1;

  mutable std::mutex answers_mu_;
  std::map<uint64_t, std::vector<AnswerEntry>> answers_;
  int64_t next_override_tag_ = 0;

  mutable std::mutex stats_mu_;
  Stats stats_;
};

}  // namespace incr
}  // namespace strq

#endif  // STRQ_INCR_INCR_H_
