#include "incr/incr.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "base/string_ops.h"
#include "obs/trace.h"

namespace strq {
namespace incr {

namespace {

int64_t ElapsedNs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - start)
      .count();
}

std::vector<VarId> CanonicalVars(int arity) {
  std::vector<VarId> vars(static_cast<size_t>(arity));
  for (int i = 0; i < arity; ++i) vars[static_cast<size_t>(i)] = i;
  return vars;
}

std::vector<Tuple> UnaryTuples(const std::vector<std::string>& strings) {
  std::vector<Tuple> tuples;
  tuples.reserve(strings.size());
  for (const std::string& s : strings) tuples.push_back({s});
  return tuples;
}

// Net-cancel insertion: adding to `primary` first cancels a pending entry
// in `opposite` (a string that left and re-entered a set across the window
// nets to no change).
void NetInsert(const std::string& s, std::set<std::string>* primary,
               std::set<std::string>* opposite) {
  if (opposite->erase(s) == 0) primary->insert(s);
}

}  // namespace

IncrementalIndex::IncrementalIndex(const VersionedDatabase* db,
                                   std::shared_ptr<AtomCache> cache,
                                   std::shared_ptr<plan::Planner> planner,
                                   Options options)
    : db_(db), cache_(std::move(cache)), planner_(std::move(planner)),
      options_(options) {
  if (planner_ == nullptr) planner_ = std::make_shared<plan::Planner>();
  DbSnapshot snap = db_->Snapshot();
  std::lock_guard<std::mutex> lock(mu_);
  SeedDomLocked(snap.db());
}

// ---------------------------------------------------------------------------
// Commit subscription
// ---------------------------------------------------------------------------

void IncrementalIndex::OnCommit(const CommitDelta& delta) {
  std::lock_guard<std::mutex> lock(mu_);
  if (delta.opaque || !dom_valid_ || delta.from_revision != dom_rev_) {
    // Unreplayable edge (whole-relation commit, missed commits, first
    // sight): rescan the head. The hook runs with the writer lock held, so
    // the head IS delta.to_revision.
    DbSnapshot snap = db_->Snapshot();
    SeedDomLocked(snap.db());
    return;
  }
  ApplyDomOpsLocked(delta);
}

void IncrementalIndex::SeedDomLocked(const Database& db) {
  counts_.clear();
  prefix_counts_.clear();
  dom_log_.clear();
  for (const auto& [name, rel] : db.relations()) {
    (void)name;
    for (const Tuple& t : rel.tuples()) {
      for (const std::string& s : t) ++counts_[s];
    }
  }
  for (const auto& [s, n] : counts_) {
    (void)n;
    for (size_t i = 0; i <= s.size(); ++i) ++prefix_counts_[s.substr(0, i)];
  }
  dom_rev_ = db.revision();
  dom_valid_ = true;
}

void IncrementalIndex::ApplyDomOpsLocked(const CommitDelta& delta) {
  DomDelta d;
  d.from_revision = delta.from_revision;
  d.to_revision = delta.to_revision;
  std::set<std::string> added, removed, p_added, p_removed;
  for (const TupleDelta& op : delta.ops) {
    for (const std::string& s : op.tuple) {
      if (op.insert) {
        if (counts_[s]++ == 0) {
          NetInsert(s, &added, &removed);
          for (size_t i = 0; i <= s.size(); ++i) {
            std::string p = s.substr(0, i);
            if (prefix_counts_[p]++ == 0) NetInsert(p, &p_added, &p_removed);
          }
        }
      } else {
        auto it = counts_.find(s);
        if (it == counts_.end()) continue;  // defensive; ops are effective
        if (--it->second == 0) {
          counts_.erase(it);
          NetInsert(s, &removed, &added);
          for (size_t i = 0; i <= s.size(); ++i) {
            std::string p = s.substr(0, i);
            auto pit = prefix_counts_.find(p);
            if (pit != prefix_counts_.end() && --pit->second == 0) {
              prefix_counts_.erase(pit);
              NetInsert(p, &p_removed, &p_added);
            }
          }
        }
      }
    }
  }
  d.added.assign(added.begin(), added.end());
  d.removed.assign(removed.begin(), removed.end());
  d.p_added.assign(p_added.begin(), p_added.end());
  d.p_removed.assign(p_removed.begin(), p_removed.end());
  dom_log_.push_back(std::move(d));
  while (dom_log_.size() > kMaxDomLog) dom_log_.pop_front();
  dom_rev_ = delta.to_revision;
}

std::optional<std::pair<std::vector<std::string>, std::vector<std::string>>>
IncrementalIndex::DomNetBetweenLocked(int64_t from, int64_t to,
                                      bool prefixes) const {
  std::set<std::string> net_added, net_removed;
  int64_t cur = from;
  while (cur != to) {
    const DomDelta* step = nullptr;
    for (const DomDelta& d : dom_log_) {
      if (d.from_revision == cur) {
        step = &d;
        break;
      }
    }
    if (step == nullptr) return std::nullopt;
    const std::vector<std::string>& add = prefixes ? step->p_added
                                                   : step->added;
    const std::vector<std::string>& rem = prefixes ? step->p_removed
                                                   : step->removed;
    for (const std::string& s : add) NetInsert(s, &net_added, &net_removed);
    for (const std::string& s : rem) NetInsert(s, &net_removed, &net_added);
    cur = step->to_revision;
  }
  return std::make_pair(
      std::vector<std::string>(net_added.begin(), net_added.end()),
      std::vector<std::string>(net_removed.begin(), net_removed.end()));
}

// ---------------------------------------------------------------------------
// Patch machinery
// ---------------------------------------------------------------------------

IncrementalIndex::NetDelta IncrementalIndex::NetOf(
    const std::vector<TupleDelta>& ops) {
  // +1 insert / -1 delete per tuple; the log records only effective ops, so
  // a tuple's entries alternate and the fold lands in {-1, 0, +1}.
  std::map<std::string, std::map<Tuple, int>> net;
  for (const TupleDelta& op : ops) net[op.relation][op.tuple] += op.insert ? 1 : -1;
  NetDelta out;
  for (const auto& [rel, tuples] : net) {
    for (const auto& [tuple, n] : tuples) {
      if (n > 0) {
        out.adds[rel].push_back(tuple);
        ++out.total_ops;
      } else if (n < 0) {
        out.dels[rel].push_back(tuple);
        ++out.total_ops;
      }
    }
  }
  return out;
}

Result<TrackAutomaton> IncrementalIndex::FromTuplesVars(
    const std::vector<VarId>& vars, const std::vector<Tuple>& tuples) {
  return TrackAutomaton::FromTuples(cache_->store(), cache_->alphabet(), vars,
                                    tuples);
}

Result<TrackAutomaton> IncrementalIndex::ApplyPatch(
    const TrackAutomaton& base, const std::vector<Tuple>& adds,
    const std::vector<Tuple>& dels, int64_t* delta_states) {
  TrackAutomaton out = base;
  if (!dels.empty()) {
    STRQ_ASSIGN_OR_RETURN(TrackAutomaton dtrie,
                          FromTuplesVars(base.vars(), dels));
    *delta_states += dtrie.NumStates();
    STRQ_ASSIGN_OR_RETURN(out, TrackAutomaton::Difference(out, dtrie));
  }
  if (!adds.empty()) {
    STRQ_ASSIGN_OR_RETURN(TrackAutomaton atrie,
                          FromTuplesVars(base.vars(), adds));
    *delta_states += atrie.NumStates();
    STRQ_ASSIGN_OR_RETURN(out, TrackAutomaton::Union(out, atrie));
  }
  return out;
}

bool IncrementalIndex::MaybeCompact(BaseState* st,
                                    const TrackAutomaton& patched,
                                    int64_t target_rev, int64_t window_ops,
                                    int64_t delta_states) {
  bool fold = window_ops > options_.max_patch_ops / 2;
  if (!fold && st->base.has_value()) {
    double budget = options_.compact_ratio *
                    static_cast<double>(st->base->NumStates());
    fold = static_cast<double>(delta_states) > budget;
  }
  if (!fold) return false;
  st->base = patched;
  st->rev = target_rev;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.compactions;
  }
  obs::Count(obs::kIncrCompactions);
  return true;
}

void IncrementalIndex::CountPatch(int64_t ns, bool answer_level) {
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.patches;
    if (answer_level) ++stats_.answer_patches;
  }
  obs::Count(obs::kIncrPatches);
  if (answer_level) obs::Count(obs::kIncrAnswerPatches);
  obs::Observe(obs::kHistIncrPatchNs, ns);
}

void IncrementalIndex::CountRecompile() {
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.recompiles;
  }
  obs::Count(obs::kIncrRecompiles);
}

void IncrementalIndex::CountUnchanged() {
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.unchanged_hits;
  }
  obs::Count(obs::kIncrUnchangedHits);
}

// ---------------------------------------------------------------------------
// TrieProvider
// ---------------------------------------------------------------------------

Result<TrackAutomaton> IncrementalIndex::RelationTrie(
    const Database& db, const std::string& name,
    const std::vector<VarId>& vars) {
  // Same key the default compiler path uses — a patched trie and a rebuilt
  // one are interchangeable cache entries.
  std::string key = name + ":" + std::to_string(db.revision());
  return cache_->CachedTrie("rel:" + key, vars,
                            [&] { return BuildRelationTrie(db, name); });
}

Result<TrackAutomaton> IncrementalIndex::BuildRelationTrie(
    const Database& db, const std::string& name) {
  const Relation* rel = db.Find(name);
  if (rel == nullptr) {
    return InvalidArgumentError("unknown relation: " + name);
  }
  const int64_t rev = db.revision();
  std::lock_guard<std::mutex> lock(mu_);
  BaseState& st = rels_[name];
  if (st.base.has_value() && st.rev == rev) return *st.base;
  if (st.base.has_value() && rev > st.rev) {
    std::optional<std::vector<TupleDelta>> chain =
        db_->DeltasBetween(st.rev, rev);
    if (chain.has_value()) {
      NetDelta net = NetOf(*chain);
      auto ait = net.adds.find(name);
      auto dit = net.dels.find(name);
      static const std::vector<Tuple> kNone;
      const std::vector<Tuple>& adds = ait != net.adds.end() ? ait->second
                                                             : kNone;
      const std::vector<Tuple>& dels = dit != net.dels.end() ? dit->second
                                                             : kNone;
      if (adds.empty() && dels.empty()) {
        // Other relations changed; this one's contents are identical, so
        // the base automaton IS the trie at the new revision.
        st.rev = rev;
        CountUnchanged();
        return *st.base;
      }
      int64_t window_ops =
          static_cast<int64_t>(adds.size() + dels.size());
      if (window_ops <= options_.max_patch_ops) {
        auto start = std::chrono::steady_clock::now();
        int64_t delta_states = 0;
        Result<TrackAutomaton> patched =
            ApplyPatch(*st.base, adds, dels, &delta_states);
        if (patched.ok()) {
          CountPatch(ElapsedNs(start), /*answer_level=*/false);
          MaybeCompact(&st, *patched, rev, window_ops, delta_states);
          return patched;
        }
        // A failed patch falls through to the rebuild below.
      }
    }
  }
  CountRecompile();
  Result<TrackAutomaton> built =
      FromTuplesVars(CanonicalVars(rel->arity()), rel->tuples());
  // Anchor forward only: a rebuild for an old pinned snapshot must not move
  // the base behind revisions already folded in.
  if (built.ok() && (!st.base.has_value() || rev >= st.rev)) {
    st.base = *built;
    st.rev = rev;
  }
  return built;
}

Result<TrackAutomaton> IncrementalIndex::AdomTrie(const Database& db,
                                                  VarId var) {
  std::string key = "adom:" + std::to_string(db.revision());
  return cache_->CachedTrie(
      key, {var}, [&] { return BuildDomTrie(db, /*prefixes=*/false); });
}

Result<TrackAutomaton> IncrementalIndex::PrefixDomTrie(const Database& db,
                                                       VarId var) {
  std::string key = "prefixdom:" + std::to_string(db.revision());
  return cache_->CachedTrie(
      key, {var}, [&] { return BuildDomTrie(db, /*prefixes=*/true); });
}

Result<TrackAutomaton> IncrementalIndex::BuildDomTrie(const Database& db,
                                                      bool prefixes) {
  const int64_t rev = db.revision();
  std::lock_guard<std::mutex> lock(mu_);
  BaseState& st = prefixes ? prefix_base_ : adom_base_;
  if (st.base.has_value() && st.rev == rev) return *st.base;
  if (st.base.has_value() && rev > st.rev) {
    auto net = DomNetBetweenLocked(st.rev, rev, prefixes);
    if (net.has_value()) {
      if (net->first.empty() && net->second.empty()) {
        st.rev = rev;
        CountUnchanged();
        return *st.base;
      }
      std::vector<Tuple> adds = UnaryTuples(net->first);
      std::vector<Tuple> dels = UnaryTuples(net->second);
      int64_t window_ops = static_cast<int64_t>(adds.size() + dels.size());
      if (window_ops <= options_.max_patch_ops) {
        auto start = std::chrono::steady_clock::now();
        int64_t delta_states = 0;
        Result<TrackAutomaton> patched =
            ApplyPatch(*st.base, adds, dels, &delta_states);
        if (patched.ok()) {
          CountPatch(ElapsedNs(start), /*answer_level=*/false);
          MaybeCompact(&st, *patched, rev, window_ops, delta_states);
          return patched;
        }
      }
    }
  }
  CountRecompile();
  std::vector<std::string> dom;
  if (dom_valid_ && dom_rev_ == rev) {
    const auto& src = prefixes ? prefix_counts_ : counts_;
    dom.reserve(src.size());
    for (const auto& [s, n] : src) {
      (void)n;
      dom.push_back(s);
    }
  } else {
    dom = db.ActiveDomain();
    if (prefixes) dom = PrefixClosure(dom);
  }
  Result<TrackAutomaton> built = FromTuplesVars({0}, UnaryTuples(dom));
  if (built.ok() && (!st.base.has_value() || rev >= st.rev)) {
    st.base = *built;
    st.rev = rev;
  }
  return built;
}

// ---------------------------------------------------------------------------
// DomainProvider (Engine B)
// ---------------------------------------------------------------------------

std::optional<std::vector<std::string>> IncrementalIndex::ActiveDomainAt(
    int64_t revision) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!dom_valid_ || dom_rev_ != revision) return std::nullopt;
  std::vector<std::string> out;
  out.reserve(counts_.size());
  for (const auto& [s, n] : counts_) {
    (void)n;
    out.push_back(s);  // map order: already sorted and deduplicated
  }
  return out;
}

std::optional<std::vector<std::string>> IncrementalIndex::PrefixClosureAt(
    int64_t revision) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!dom_valid_ || dom_rev_ != revision) return std::nullopt;
  std::vector<std::string> out;
  out.reserve(prefix_counts_.size());
  for (const auto& [s, n] : prefix_counts_) {
    (void)n;
    out.push_back(s);
  }
  return out;
}

std::shared_ptr<const DomainTrie> IncrementalIndex::AdomTrieAt(
    int64_t revision) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!dom_valid_ || dom_rev_ != revision) return nullptr;
  if (adom_trie_rev_ == revision && adom_trie_view_ != nullptr) {
    return adom_trie_view_;
  }
  std::vector<std::string> keys;
  keys.reserve(counts_.size());
  for (const auto& [s, n] : counts_) {
    (void)n;
    keys.push_back(s);
  }
  Result<std::shared_ptr<const DomainTrie>> built =
      DomainTrie::Build(cache_->alphabet(), keys);
  if (!built.ok()) return nullptr;
  adom_trie_view_ = *std::move(built);
  adom_trie_rev_ = revision;
  return adom_trie_view_;
}

std::shared_ptr<const DomainTrie> IncrementalIndex::PrefixTrieAt(
    int64_t revision) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!dom_valid_ || dom_rev_ != revision) return nullptr;
  if (prefix_trie_rev_ == revision && prefix_trie_view_ != nullptr) {
    return prefix_trie_view_;
  }
  std::vector<std::string> keys;
  keys.reserve(prefix_counts_.size());
  for (const auto& [s, n] : prefix_counts_) {
    (void)n;
    keys.push_back(s);
  }
  Result<std::shared_ptr<const DomainTrie>> built =
      DomainTrie::Build(cache_->alphabet(), keys);
  if (!built.ok()) return nullptr;
  prefix_trie_view_ = *std::move(built);
  prefix_trie_rev_ = revision;
  return prefix_trie_view_;
}

// ---------------------------------------------------------------------------
// Answer maintenance
// ---------------------------------------------------------------------------

void IncrementalIndex::AnalyzeFormula(const FormulaPtr& f, bool positive_path,
                                      AnswerEntry* e) {
  if (f == nullptr) return;
  switch (f->kind) {
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
      return;
    case FormulaKind::kPred:
      // adom(t) changes under inserts into ANY relation, so its presence
      // anywhere (any polarity) blocks answer patching.
      if (f->pred == PredKind::kAdom) e->adom_free = false;
      return;
    case FormulaKind::kRelation:
      ++e->occurrences[f->relation];
      if (positive_path) ++e->positive_occurrences[f->relation];
      return;
    case FormulaKind::kNot:
      AnalyzeFormula(f->left, false, e);
      return;
    case FormulaKind::kAnd:
    case FormulaKind::kOr:
      // ∧/∨ distribute over the answer union (φ ∧ (ψ∪δ) = (φ∧ψ) ∪ (φ∧δ)).
      AnalyzeFormula(f->left, positive_path, e);
      AnalyzeFormula(f->right, positive_path, e);
      return;
    case FormulaKind::kImplies:
      // φ → ψ ≡ ¬φ ∨ ψ: the antecedent flips polarity, the consequent is
      // still an Or context.
      AnalyzeFormula(f->left, false, e);
      AnalyzeFormula(f->right, positive_path, e);
      return;
    case FormulaKind::kIff:
      AnalyzeFormula(f->left, false, e);
      AnalyzeFormula(f->right, false, e);
      return;
    case FormulaKind::kExists:
      if (f->range != QuantRange::kAll) e->adom_free = false;
      AnalyzeFormula(f->left, positive_path && f->range == QuantRange::kAll,
                     e);
      return;
    case FormulaKind::kForall:
      if (f->range != QuantRange::kAll) e->adom_free = false;
      AnalyzeFormula(f->left, false, e);
      return;
  }
}

namespace {

// f = R(x₁..x_k) with pairwise-distinct variable arguments? Fills the
// column permutation: answer track j (sorted variable names) reads relation
// column perm[j].
bool DetectBareAtom(const FormulaPtr& f, std::string* rel,
                    std::vector<int>* perm) {
  if (f == nullptr || f->kind != FormulaKind::kRelation) return false;
  std::vector<std::string> names;
  for (const TermPtr& arg : f->args) {
    if (arg == nullptr || arg->kind != TermKind::kVar) return false;
    names.push_back(arg->var);
  }
  std::vector<std::string> sorted = names;
  std::sort(sorted.begin(), sorted.end());
  if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
    return false;
  }
  perm->clear();
  for (const std::string& name : sorted) {
    auto it = std::find(names.begin(), names.end(), name);
    perm->push_back(static_cast<int>(it - names.begin()));
  }
  *rel = f->relation;
  return true;
}

std::vector<Tuple> PermuteTuples(const std::vector<Tuple>& tuples,
                                 const std::vector<int>& perm) {
  std::vector<Tuple> out;
  out.reserve(tuples.size());
  for (const Tuple& t : tuples) {
    Tuple p;
    p.reserve(perm.size());
    for (int i : perm) p.push_back(t[static_cast<size_t>(i)]);
    out.push_back(std::move(p));
  }
  return out;
}

}  // namespace

Result<TrackAutomaton> IncrementalIndex::CompileAnswer(AutomataEvaluator& eval,
                                                       const FormulaPtr& f,
                                                       const Database& db) {
  const int64_t rev = db.revision();
  const uint64_t h = StructuralHash(f);

  std::optional<AnswerEntry> entry;
  {
    std::lock_guard<std::mutex> lock(answers_mu_);
    auto it = answers_.find(h);
    if (it != answers_.end()) {
      for (const AnswerEntry& e : it->second) {
        if (StructurallyEqual(e.formula, f)) {
          entry = e;
          break;
        }
      }
    }
  }

  if (entry.has_value() && entry->rev == rev && entry->answer.has_value()) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.answer_hits;
    return *entry->answer;
  }
  if (entry.has_value() && rev < entry->rev) {
    // A pinned snapshot older than the maintained answer: compile plainly
    // (plan + atom caches still help) and leave the entry anchored forward.
    return eval.Compile(f);
  }

  auto store_entry = [&](AnswerEntry e) {
    std::lock_guard<std::mutex> lock(answers_mu_);
    if (answers_.size() > options_.max_answer_entries) answers_.clear();
    std::vector<AnswerEntry>& bucket = answers_[h];
    for (AnswerEntry& existing : bucket) {
      if (StructurallyEqual(existing.formula, f)) {
        // Last writer wins; concurrent sessions racing forward both hold
        // correct automata for their own revisions.
        if (e.rev >= existing.rev) existing = std::move(e);
        return;
      }
    }
    bucket.push_back(std::move(e));
  };

  if (!entry.has_value()) {
    AnswerEntry e;
    e.formula = f;
    AnalyzeFormula(f, /*positive_path=*/true, &e);
    e.bare_atom = DetectBareAtom(f, &e.bare_atom_rel, &e.bare_perm);
    STRQ_ASSIGN_OR_RETURN(TrackAutomaton compiled, eval.Compile(f));
    e.rev = rev;
    e.answer = compiled;
    e.base_states = compiled.NumStates();
    e.delta_states = 0;
    store_entry(std::move(e));
    return compiled;
  }

  // entry->rev < rev: decide patch vs recompile for the window in between.
  std::optional<std::vector<TupleDelta>> chain =
      db_->DeltasBetween(entry->rev, rev);
  if (chain.has_value() && entry->answer.has_value()) {
    NetDelta net = NetOf(*chain);
    if (net.total_ops == 0) {
      entry->rev = rev;
      CountUnchanged();
      store_entry(*entry);
      return *entry->answer;
    }
    std::set<std::string> changed;
    for (const auto& [rel, tuples] : net.adds) {
      (void)tuples;
      changed.insert(rel);
    }
    for (const auto& [rel, tuples] : net.dels) {
      (void)tuples;
      changed.insert(rel);
    }
    // Patches handle a single changed relation; multi-relation windows
    // recompile (over tries that were themselves patched per relation).
    if (changed.size() == 1) {
      const std::string& name = *changed.begin();
      const std::vector<Tuple>& adds = net.adds[name];
      const std::vector<Tuple>& dels = net.dels[name];
      int64_t delta_ops = static_cast<int64_t>(adds.size() + dels.size());
      bool advise =
          planner_->AdvisePatch(f, delta_ops, cache_->store().stats());

      auto finish_patch = [&](const TrackAutomaton& patched,
                              int64_t delta_states,
                              std::chrono::steady_clock::time_point start)
          -> TrackAutomaton {
        CountPatch(ElapsedNs(start), /*answer_level=*/true);
        entry->delta_states += delta_states;
        double budget = options_.compact_ratio *
                        static_cast<double>(entry->base_states);
        if (static_cast<double>(entry->delta_states) > budget) {
          entry->base_states = patched.NumStates();
          entry->delta_states = 0;
          {
            std::lock_guard<std::mutex> lock(stats_mu_);
            ++stats_.compactions;
          }
          obs::Count(obs::kIncrCompactions);
        }
        entry->rev = rev;
        entry->answer = patched;
        store_entry(*entry);
        return patched;
      };

      if (entry->bare_atom && entry->bare_atom_rel == name && advise) {
        // Splice: the answer of R(x̄) is R's tuple set with columns in
        // sorted-variable order, so the delta applies directly.
        auto start = std::chrono::steady_clock::now();
        int64_t delta_states = 0;
        Result<TrackAutomaton> patched =
            ApplyPatch(*entry->answer, PermuteTuples(adds, entry->bare_perm),
                       PermuteTuples(dels, entry->bare_perm), &delta_states);
        if (patched.ok()) return finish_patch(*patched, delta_states, start);
      } else if (dels.empty() && entry->adom_free &&
                 entry->occurrences[name] == 1 &&
                 entry->positive_occurrences[name] == 1 && advise) {
        // Linear-positive insert-only window: Q[R ∪ δ] = Q[R] ∪ Q[δ].
        const Relation* stored = db.Find(name);
        if (stored != nullptr) {
          auto start = std::chrono::steady_clock::now();
          Result<Relation> delta_rel = Relation::Create(stored->arity(), adds);
          if (delta_rel.ok()) {
            std::string tag;
            {
              std::lock_guard<std::mutex> lock(answers_mu_);
              tag = std::to_string(next_override_tag_++);
            }
            Result<TrackAutomaton> delta_answer =
                eval.CompileWithRelationOverride(f, name, *delta_rel, tag);
            if (delta_answer.ok()) {
              Result<TrackAutomaton> patched =
                  TrackAutomaton::Union(*entry->answer, *delta_answer);
              if (patched.ok()) {
                return finish_patch(*patched, delta_answer->NumStates(),
                                    start);
              }
            }
          }
        }
      }
    }
  }

  // Fallback: recompile against the new revision. The compile itself rides
  // on the patched relation tries, so "recompile" here is the combine phase
  // only, and RecordActual inside keeps AdvisePatch calibrated.
  CountRecompile();
  STRQ_ASSIGN_OR_RETURN(TrackAutomaton compiled, eval.Compile(f));
  entry->rev = rev;
  entry->answer = compiled;
  entry->base_states = compiled.NumStates();
  entry->delta_states = 0;
  store_entry(*entry);
  return compiled;
}

Stats IncrementalIndex::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

}  // namespace incr
}  // namespace strq
