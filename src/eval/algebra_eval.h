#ifndef STRQ_EVAL_ALGEBRA_EVAL_H_
#define STRQ_EVAL_ALGEBRA_EVAL_H_

#include "base/status.h"
#include "eval/automata_eval.h"
#include "relational/algebra.h"
#include "relational/database.h"

namespace strq {

// Evaluator for the extended relational algebras RA(S), RA(S_left),
// RA(S_reg), RA(S_len) of Sections 6.2 and 7.1. Algebra plans always produce
// finite relations — the algebra *is* the effective syntax for safe queries
// (Theorems 4 and 8).
//
// σ_α conditions are pure M-formulas (possibly with unrestricted quantifiers
// over Σ*); they are compiled once per plan node to a multi-track automaton
// via the automata engine and then tested per tuple.
class AlgebraEvaluator {
 public:
  struct Options {
    // Overall ceiling on intermediate relation sizes. ↓_i in particular
    // can produce |Σ|^|s| tuples per input tuple (the paper notes this
    // exponentiality is unavoidable for RA(S_len), Section 6.2).
    size_t max_tuples = 2000000;
    // Per-plan-node memoization (safe-translation plans share the universe
    // subtree heavily). Off switch exists for the ablation bench.
    bool enable_memo = true;
  };

  explicit AlgebraEvaluator(const Database* db) : AlgebraEvaluator(db, Options()) {}
  AlgebraEvaluator(const Database* db, Options options);
  // Shares `cache` with the embedded formula engine (σ_α conditions compile
  // into it) and hence with any other engine holding the same cache.
  AlgebraEvaluator(const Database* db, Options options,
                   std::shared_ptr<AtomCache> cache);

  // The shared atom cache of the embedded formula engine; never null.
  const std::shared_ptr<AtomCache>& atom_cache() const {
    return formula_engine_.atom_cache();
  }

  // σ_α condition formulas route through the embedded automata engine and
  // hence through its planner; these forward to it so one shared Planner
  // can serve all three engines.
  void set_planner(std::shared_ptr<plan::Planner> planner) {
    formula_engine_.set_planner(std::move(planner));
  }
  const std::shared_ptr<plan::Planner>& planner() const {
    return formula_engine_.planner();
  }

  // Parallelism knob: forwarded to the embedded formula engine (parallel
  // subplan compilation of σ_α conditions) and used locally to test σ_α
  // conditions over large inputs with a parallel, order-preserving tuple
  // scan. Node-level Eval recursion stays serial (memo_ is not shared
  // across threads). num_threads = 1 restores fully serial evaluation.
  void set_parallel_options(ParallelOptions options) {
    parallel_ = options;
    formula_engine_.set_parallel_options(options);
  }
  const ParallelOptions& parallel_options() const { return parallel_; }

  Result<Relation> Evaluate(const RaPtr& expr);

 private:
  Result<Relation> Eval(const RaPtr& expr);
  // EvalUncached wraps EvalNode with a trace span and per-node metrics.
  Result<Relation> EvalUncached(const RaExpr& expr);
  Result<Relation> EvalNode(const RaExpr& expr);
  Status CheckBudget(size_t size) const;

  const Database* db_;
  Options options_;
  ParallelOptions parallel_;
  AutomataEvaluator formula_engine_;
  // Plans built by the safe-query translation share subtrees (notably the
  // universe expression); results are memoized per node within a plan.
  std::map<const RaExpr*, Relation> memo_;
};

}  // namespace strq

#endif  // STRQ_EVAL_ALGEBRA_EVAL_H_
