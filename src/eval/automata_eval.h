#ifndef STRQ_EVAL_AUTOMATA_EVAL_H_
#define STRQ_EVAL_AUTOMATA_EVAL_H_

#include <memory>
#include <string>
#include <vector>

#include <optional>

#include "automata/dfa.h"
#include "base/status.h"
#include "base/thread_pool.h"
#include "lazy/lazy.h"
#include "logic/ast.h"
#include "mta/atom_cache.h"
#include "mta/track_automaton.h"
#include "plan/planner.h"
#include "relational/database.h"

namespace strq {

// Pluggable supplier of the database-contents automata Engine A's compiler
// needs: relation table-tries, the active-domain automaton, and the
// prefix-closure automaton for restricted ranges. The default (no provider)
// path builds them from tuples through the AtomCache, keyed on the database
// revision. The incremental-maintenance index (src/incr) implements this
// interface by PATCHING a prior revision's automaton with the tuple deltas
// in between instead of rebuilding.
//
// Contract: the returned automaton must be over exactly `vars` (pairwise
// distinct, as handed in by the compiler) and its language must equal what
// the default build would produce for `db`'s current contents — store
// interning then guarantees the canonical id is identical either way, which
// is what keeps answers and store ids invariant across patch vs recompile.
class TrieProvider {
 public:
  virtual ~TrieProvider() = default;
  virtual Result<TrackAutomaton> RelationTrie(const Database& db,
                                              const std::string& name,
                                              const std::vector<VarId>& vars) = 0;
  virtual Result<TrackAutomaton> AdomTrie(const Database& db, VarId var) = 0;
  virtual Result<TrackAutomaton> PrefixDomTrie(const Database& db,
                                               VarId var) = 0;
};

// Engine A: exact natural-semantics evaluation of RC(SC, M) queries by
// compilation to multi-track automata.
//
// Every predicate of S, S_left, S_reg and S_len is an automatic relation
// (src/mta/atoms.h), database relations are finite (hence automatic), and
// automatic relations are closed under the first-order operations. So any
// query of the paper's tame calculi compiles to an *answer automaton* whose
// language is exactly {conv(t̄) : D ⊨ φ(t̄)} — with quantifiers ranging over
// ALL of Σ*, no active-domain approximation. This single construction yields:
//   * query evaluation (enumerate the answer automaton),
//   * state-safety (Proposition 7): answer automaton finiteness,
//   * the truth of sentences, including the safety sentences of Section 6.
//
// All automata are drawn from a shared AtomCache/AutomatonStore: atoms,
// patterns and table tries are compiled once per cache lifetime, and every
// first-order operation is memoized in the store's computed table. Pass the
// same cache to several evaluators (and to the safety deciders and algebra
// engine) to share that work across queries.
//
// Concatenation terms are rejected (kUnsupported): concatenation is not an
// automatic relation, which is the engine-level shadow of Proposition 1.
class AutomataEvaluator {
 public:
  // The database's alphabet fixes Σ. The database must outlive the
  // evaluator. This ctor gives the evaluator a private AtomCache backed by
  // the process-wide AutomatonStore::Default().
  explicit AutomataEvaluator(const Database* db);

  // Shares `cache` (and its store) with other engines. A null cache — or
  // one over a different alphabet — is replaced by a fresh private one.
  AutomataEvaluator(const Database* db, std::shared_ptr<AtomCache> cache);

  // Also shares `planner` (and its plan cache). A null planner is replaced
  // by a fresh private one with default options.
  AutomataEvaluator(const Database* db, std::shared_ptr<AtomCache> cache,
                    std::shared_ptr<plan::Planner> planner);

  // The cache this evaluator compiles into; never null.
  const std::shared_ptr<AtomCache>& atom_cache() const { return cache_; }

  // Every Compile routes through this planner; never null. Replace it (e.g.
  // with a shared instance, or one with rules toggled off) before
  // compiling. Passing null installs a fresh default planner.
  void set_planner(std::shared_ptr<plan::Planner> planner);
  const std::shared_ptr<plan::Planner>& planner() const { return planner_; }

  // Parallel compilation of independent subplans. The planner annotates the
  // And/Or folds it rendered from one n-ary plan node; the compiler fans
  // those children out to the shared pool and folds the results in planner
  // order. Answers and canonical store ids are identical at every thread
  // count (the store interns by language), and so is the span-tree shape:
  // tracing is fully concurrent — worker spans carry the submitting span as
  // parent via TraceContext propagation, so EXPLAIN ANALYZE traces stay
  // complete under parallel compilation.
  void set_parallel_options(ParallelOptions options) { parallel_ = options; }
  const ParallelOptions& parallel_options() const { return parallel_; }

  // Routes the compiler's database-contents automata (relation tries, adom,
  // prefix-closure) through `provider` instead of the default
  // FromTuples-via-AtomCache path. Null restores the default. The provider
  // must outlive every Compile call.
  void set_trie_provider(std::shared_ptr<TrieProvider> provider) {
    trie_provider_ = std::move(provider);
  }
  const std::shared_ptr<TrieProvider>& trie_provider() const {
    return trie_provider_;
  }

  // Compiles φ to its answer automaton over free(φ). Track order equals the
  // lexicographic order of the free-variable names (see FreeVarOrder).
  Result<TrackAutomaton> Compile(const FormulaPtr& f);

  // Compiles φ with occurrences of `relation` reading `contents` instead of
  // the database's stored relation (same arity required). This is the
  // delta-compile primitive of answer maintenance: for a linear-positive
  // query, Q[R ∪ δ] = Q[R] ∪ Q[δ], and this call produces Q[δ]. The trie
  // for `contents` is cached under "relovr:<cache_tag>:<revision>" — the
  // tag must uniquely identify the contents (src/incr uses a process-unique
  // counter); the revision suffix lets dead-snapshot eviction reclaim the
  // entry. Does not feed Planner::RecordActual (delta sizes would poison
  // the full-compile feedback).
  Result<TrackAutomaton> CompileWithRelationOverride(const FormulaPtr& f,
                                                     const std::string& relation,
                                                     const Relation& contents,
                                                     const std::string& cache_tag);

  // The column order used for answer relations: sorted free-variable names.
  static std::vector<std::string> FreeVarOrder(const FormulaPtr& f);

  // Lazy compilation: the planned formula's top-level boolean skeleton
  // (connectives down to the first quantifier or atom) is decomposed; each
  // leaf is compiled eagerly through the shared cache, but the product over
  // the leaves is built on the fly — joint states exist only once a query
  // mode explores them. Track order is FreeVarOrder(f), same as Compile.
  // Needs at least one free variable (sentences have nothing to
  // enumerate; evaluate them directly).
  Result<lazy::LazyProduct> CompileLazy(const FormulaPtr& f);

  // Early-exit query modes. Each consults Planner::AdviseLazy: queries
  // whose answers are known (or estimated) small are materialized through
  // Compile() and answered from the interned automaton; everything else
  // goes through CompileLazy, touching only the product states the mode's
  // traversal visits. Either path returns identical answers.
  //
  // Membership of one tuple (FreeVarOrder column order).
  Result<bool> Contains(const FormulaPtr& f,
                        const std::vector<std::string>& tuple);
  // A shortest answer tuple (by convolution shortlex), or nullopt if the
  // answer set is empty. For sentences: the empty tuple iff true.
  Result<std::optional<std::vector<std::string>>> ExistsWitness(
      const FormulaPtr& f);
  // The first k answers in convolution-shortlex order (the order
  // TrackAutomaton::EnumerateTuples produces), components capped at
  // max_len characters.
  Result<std::vector<std::vector<std::string>>> TopK(const FormulaPtr& f,
                                                     size_t k,
                                                     int max_len = 64);

  // Evaluates an open query: the set of satisfying tuples, or UnsafeError if
  // it is infinite (columns ordered by FreeVarOrder). `max_tuples` bounds
  // the materialized result.
  Result<Relation> Evaluate(const FormulaPtr& f, size_t max_tuples = 1000000);

  // Evaluates a sentence.
  Result<bool> EvaluateSentence(const FormulaPtr& f);

  // State-safety (Proposition 7): is φ(D) finite?
  Result<bool> IsSafeOnDatabase(const FormulaPtr& f);

  // Compiles a LIKE/SIMILAR/regex pattern over the database alphabet,
  // memoized in the shared cache. Exposed for reuse by the algebra
  // evaluator.
  Result<Dfa> CompiledPattern(const std::string& pattern,
                              PatternSyntax syntax);

 private:
  const Database* db_;
  std::shared_ptr<AtomCache> cache_;
  std::shared_ptr<plan::Planner> planner_;
  std::shared_ptr<TrieProvider> trie_provider_;
  ParallelOptions parallel_;
};

}  // namespace strq

#endif  // STRQ_EVAL_AUTOMATA_EVAL_H_
