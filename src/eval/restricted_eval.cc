#include "eval/restricted_eval.h"

#include <algorithm>
#include <chrono>
#include <set>

#include "automata/dfa.h"
#include "automata/like.h"
#include "automata/regex.h"
#include "base/budget.h"
#include "base/string_ops.h"
#include "obs/trace.h"

namespace strq {

namespace {

using Env = std::map<std::string, std::string>;

class Evaluator {
 public:
  // `adom` is an optional precomputed active domain (the incremental
  // domain provider's maintained view); null means scan the database.
  Evaluator(const Database* db, const RestrictedEvaluator::Options& options,
            AtomCache* cache, const std::vector<std::string>* adom = nullptr)
      : db_(db), options_(options), cache_(cache) {
    adom_ = adom != nullptr ? *adom : db_->ActiveDomain();
  }

  Result<bool> Eval(const FormulaPtr& f, Env& env) {
    switch (f->kind) {
      case FormulaKind::kTrue:
        return true;
      case FormulaKind::kFalse:
        return false;
      case FormulaKind::kPred:
        return EvalPred(*f, env);
      case FormulaKind::kRelation:
        return EvalRelation(*f, env);
      case FormulaKind::kNot: {
        STRQ_ASSIGN_OR_RETURN(bool v, Eval(f->left, env));
        return !v;
      }
      case FormulaKind::kAnd: {
        STRQ_ASSIGN_OR_RETURN(bool a, Eval(f->left, env));
        if (!a) return false;
        return Eval(f->right, env);
      }
      case FormulaKind::kOr: {
        STRQ_ASSIGN_OR_RETURN(bool a, Eval(f->left, env));
        if (a) return true;
        return Eval(f->right, env);
      }
      case FormulaKind::kImplies: {
        STRQ_ASSIGN_OR_RETURN(bool a, Eval(f->left, env));
        if (!a) return true;
        return Eval(f->right, env);
      }
      case FormulaKind::kIff: {
        STRQ_ASSIGN_OR_RETURN(bool a, Eval(f->left, env));
        STRQ_ASSIGN_OR_RETURN(bool b, Eval(f->right, env));
        return a == b;
      }
      case FormulaKind::kExists:
      case FormulaKind::kForall:
        return EvalQuantifier(*f, env);
    }
    return InternalError("unknown formula kind");
  }

 private:
  Result<std::string> EvalTerm(const TermPtr& t, const Env& env) {
    switch (t->kind) {
      case TermKind::kVar: {
        auto it = env.find(t->var);
        if (it == env.end()) {
          return InternalError("unbound variable " + t->var);
        }
        return it->second;
      }
      case TermKind::kConst:
        return t->text;
      case TermKind::kAppend: {
        STRQ_ASSIGN_OR_RETURN(std::string v, EvalTerm(t->arg0, env));
        return AppendLast(v, t->letter);
      }
      case TermKind::kPrepend: {
        STRQ_ASSIGN_OR_RETURN(std::string v, EvalTerm(t->arg0, env));
        return PrependFirst(v, t->letter);
      }
      case TermKind::kTrim: {
        STRQ_ASSIGN_OR_RETURN(std::string v, EvalTerm(t->arg0, env));
        return TrimLeading(v, t->letter);
      }
      case TermKind::kLcp: {
        STRQ_ASSIGN_OR_RETURN(std::string a, EvalTerm(t->arg0, env));
        STRQ_ASSIGN_OR_RETURN(std::string b, EvalTerm(t->arg1, env));
        return LongestCommonPrefix(a, b);
      }
      case TermKind::kInsert: {
        STRQ_ASSIGN_OR_RETURN(std::string a, EvalTerm(t->arg0, env));
        STRQ_ASSIGN_OR_RETURN(std::string b, EvalTerm(t->arg1, env));
        return InsertAfterPrefix(a, b, t->letter);
      }
      case TermKind::kConcat: {
        // Direct term evaluation is well-defined even for concatenation;
        // only quantification over Σ* is problematic (src/concat).
        STRQ_ASSIGN_OR_RETURN(std::string a, EvalTerm(t->arg0, env));
        STRQ_ASSIGN_OR_RETURN(std::string b, EvalTerm(t->arg1, env));
        return a + b;
      }
    }
    return InternalError("unknown term kind");
  }

  // Patterns are compiled (and served) through the shared AtomCache, so a
  // pattern compiled by any engine is reused by every other one.
  Result<DfaRef> Pattern(const std::string& pattern, PatternSyntax syntax) {
    return cache_->CompiledPattern(pattern, syntax);
  }

  Result<bool> EvalPred(const Formula& f, const Env& env) {
    std::vector<std::string> args;
    for (const TermPtr& t : f.args) {
      STRQ_ASSIGN_OR_RETURN(std::string v, EvalTerm(t, env));
      args.push_back(std::move(v));
    }
    switch (f.pred) {
      case PredKind::kEq:
        return args[0] == args[1];
      case PredKind::kPrefix:
        return IsPrefix(args[0], args[1]);
      case PredKind::kStrictPrefix:
        return IsStrictPrefix(args[0], args[1]);
      case PredKind::kOneStep:
        return IsOneStepExtension(args[0], args[1]);
      case PredKind::kLast:
        return LastSymbolIs(args[0], f.letter);
      case PredKind::kEqLen:
        return EqualLength(args[0], args[1]);
      case PredKind::kLeqLen:
        return args[0].size() <= args[1].size();
      case PredKind::kLexLeq: {
        // The alphabet order gives the symbol order (Section 4).
        std::string order;
        for (int i = 0; i < db_->alphabet().size(); ++i) {
          order.push_back(db_->alphabet().CharOf(static_cast<Symbol>(i)));
        }
        return LexLeq(args[0], args[1], order);
      }
      case PredKind::kAdom:
        return std::binary_search(adom_.begin(), adom_.end(), args[0]);
      case PredKind::kLike:
        return LikeMatch(args[0], f.pattern);
      case PredKind::kMember: {
        STRQ_ASSIGN_OR_RETURN(DfaRef lang, Pattern(f.pattern, f.syntax));
        return lang->AcceptsString(db_->alphabet(), args[0]);
      }
      case PredKind::kSuffixIn: {
        if (!IsPrefix(args[0], args[1])) return false;
        STRQ_ASSIGN_OR_RETURN(DfaRef lang, Pattern(f.pattern, f.syntax));
        return lang->AcceptsString(db_->alphabet(),
                                   RelativeSuffix(args[1], args[0]));
      }
    }
    return InternalError("unknown predicate");
  }

  Result<bool> EvalRelation(const Formula& f, const Env& env) {
    const Relation* rel = db_->Find(f.relation);
    if (rel == nullptr) {
      return InvalidArgumentError("unknown relation " + f.relation);
    }
    if (static_cast<int>(f.args.size()) != rel->arity()) {
      return InvalidArgumentError("relation " + f.relation +
                                  " arity mismatch");
    }
    Tuple t;
    for (const TermPtr& arg : f.args) {
      STRQ_ASSIGN_OR_RETURN(std::string v, EvalTerm(arg, env));
      t.push_back(std::move(v));
    }
    return rel->Contains(t);
  }

  // Candidate strings for a restricted quantifier, given the parameter
  // values (free variables of the body in the current environment).
  Result<std::vector<std::string>> Candidates(const Formula& f,
                                              const Env& env) {
    std::set<std::string> params;
    {
      std::set<std::string> fv = FreeVars(f.left);
      fv.erase(f.var);
      for (const std::string& name : fv) {
        auto it = env.find(name);
        if (it != env.end()) params.insert(it->second);
      }
    }
    switch (f.range) {
      case QuantRange::kAll: {
        if (!options_.all_quantifier_bound.has_value()) {
          return UnsupportedError(
              "plain quantifier in the restricted evaluator; apply the "
              "collapse (Theorem 1 / Theorem 2) or use the automata engine");
        }
        std::string chars;
        for (int i = 0; i < db_->alphabet().size(); ++i) {
          chars.push_back(db_->alphabet().CharOf(static_cast<Symbol>(i)));
        }
        return AllStringsUpToLength(chars, *options_.all_quantifier_bound);
      }
      case QuantRange::kAdom:
        return adom_;
      case QuantRange::kPrefixDom: {
        std::vector<std::string> base = adom_;
        base.insert(base.end(), params.begin(), params.end());
        return PrefixClosure(base);
      }
      case QuantRange::kLenDom: {
        size_t max_len = 0;
        for (const std::string& s : adom_) max_len = std::max(max_len, s.size());
        for (const std::string& s : params) {
          max_len = std::max(max_len, s.size());
        }
        // |Σ|^(maxlen+1) candidate budget check before enumerating.
        double count = 1;
        for (size_t i = 0; i < max_len; ++i) {
          count *= db_->alphabet().size();
          count += 1;
          if (count > static_cast<double>(options_.max_len_candidates)) {
            return ResourceExhaustedError(
                "length-restricted quantifier candidate set too large");
          }
        }
        std::string chars;
        for (int i = 0; i < db_->alphabet().size(); ++i) {
          chars.push_back(db_->alphabet().CharOf(static_cast<Symbol>(i)));
        }
        return AllStringsUpToLength(chars, static_cast<int>(max_len));
      }
    }
    return InternalError("unknown range");
  }

  Result<bool> EvalQuantifier(const Formula& f, Env& env) {
    STRQ_ASSIGN_OR_RETURN(std::vector<std::string> candidates,
                          Candidates(f, env));
    obs::Count(obs::kRestrictedCandidates,
               static_cast<int64_t>(candidates.size()));
    bool is_forall = f.kind == FormulaKind::kForall;
    auto saved = env.find(f.var);
    std::optional<std::string> shadowed;
    if (saved != env.end()) shadowed = saved->second;
    bool result = is_forall;
    for (const std::string& c : candidates) {
      env[f.var] = c;
      Result<bool> v = Eval(f.left, env);
      if (!v.ok()) {
        RestoreVar(env, f.var, shadowed);
        return v.status();
      }
      if (is_forall && !*v) {
        result = false;
        break;
      }
      if (!is_forall && *v) {
        result = true;
        break;
      }
    }
    RestoreVar(env, f.var, shadowed);
    return result;
  }

  static void RestoreVar(Env& env, const std::string& var,
                         const std::optional<std::string>& shadowed) {
    if (shadowed.has_value()) {
      env[var] = *shadowed;
    } else {
      env.erase(var);
    }
  }

  const Database* db_;
  RestrictedEvaluator::Options options_;
  AtomCache* cache_;
  std::vector<std::string> adom_;
};

}  // namespace

RestrictedEvaluator::RestrictedEvaluator(const Database* db, Options options)
    : RestrictedEvaluator(db, options, nullptr) {}

RestrictedEvaluator::RestrictedEvaluator(const Database* db, Options options,
                                         std::shared_ptr<AtomCache> cache)
    : db_(db), options_(options), cache_(std::move(cache)) {
  if (cache_ == nullptr || !(cache_->alphabet() == db_->alphabet())) {
    cache_ = std::make_shared<AtomCache>(db_->alphabet());
  }
  planner_ = std::make_shared<plan::Planner>();
}

void RestrictedEvaluator::set_planner(std::shared_ptr<plan::Planner> planner) {
  planner_ = std::move(planner);
  if (planner_ == nullptr) planner_ = std::make_shared<plan::Planner>();
}

Result<bool> RestrictedEvaluator::Holds(
    const FormulaPtr& f, const std::map<std::string, std::string>& assignment) {
  obs::Span span("restricted.holds");
  FormulaPtr planned = planner_->Plan(f, db_, cache_.get()).formula;
  std::optional<std::vector<std::string>> adom = ProvidedAdom();
  Evaluator eval(db_, options_, cache_.get(), adom ? &*adom : nullptr);
  Env env = assignment;
  return eval.Eval(planned, env);
}

Result<bool> RestrictedEvaluator::EvaluateSentence(const FormulaPtr& f) {
  if (!FreeVars(f).empty()) {
    return InvalidArgumentError("sentence expected, found free variables");
  }
  return Holds(f, {});
}

Result<Relation> RestrictedEvaluator::EvaluateOnCandidates(
    const FormulaPtr& f, const std::vector<std::string>& candidates) {
  obs::Span span("restricted.evaluate_on_candidates");
  span.Attr("candidates", static_cast<int64_t>(candidates.size()));
  auto latency_start = std::chrono::steady_clock::now();
  auto observe_latency = [&latency_start] {
    obs::Observe(obs::kHistQueryLatencyNs,
                 std::chrono::duration_cast<std::chrono::nanoseconds>(
                     std::chrono::steady_clock::now() - latency_start)
                     .count());
  };
  // Columns come from the ORIGINAL formula: planning may eliminate a
  // variable, but the advertised column set must not change (the dropped
  // column is then unconstrained over the candidates, as before planning).
  std::set<std::string> fv = FreeVars(f);
  std::vector<std::string> vars(fv.begin(), fv.end());
  FormulaPtr planned = planner_->Plan(f, db_, cache_.get()).formula;
  int k = static_cast<int>(vars.size());
  std::vector<Tuple> out;
  std::optional<std::vector<std::string>> adom = ProvidedAdom();
  const std::vector<std::string>* adom_ptr = adom ? &*adom : nullptr;
  Evaluator eval(db_, options_, cache_.get(), adom_ptr);

  if (candidates.empty() && k > 0) return Relation::Create(k, {});

  // Parallel path: partition the candidates^k assignment space into one
  // contiguous block per thread. Every assignment has a rank (its odometer
  // value read as a base-|candidates| number), so blocks enumerate exactly
  // the same tuples in exactly the same order as the serial odometer, and
  // concatenating the per-block outputs reproduces the serial answer
  // byte-for-byte.
  int threads = parallel_.EffectiveThreads();
  double total_est = 1;
  for (int i = 0; i < k; ++i) total_est *= static_cast<double>(candidates.size());
  if (threads > 1 && k > 0 && total_est >= 2 && total_est <= 4e9) {
    uint64_t total = 1;
    for (int i = 0; i < k; ++i) total *= candidates.size();
    uint64_t chunks = std::min<uint64_t>(threads, total);
    std::vector<std::vector<Tuple>> partial(chunks);
    std::vector<Status> errors(chunks, Status::Ok());
    ThreadPool::ParallelFor(
        parallel_.num_threads, static_cast<int>(chunks), [&](int c) {
          uint64_t lo = total * c / chunks;
          uint64_t hi = total * (c + 1) / chunks;
          Evaluator worker(db_, options_, cache_.get(), adom_ptr);
          for (uint64_t m = lo; m < hi; ++m) {
            // Per-request deadline, polled at candidate-chunk granularity.
            if (((m - lo) & 255) == 0) {
              Status deadline = CheckDeadline();
              if (!deadline.ok()) {
                errors[c] = deadline;
                return;
              }
            }
            Env env;
            Tuple t;
            uint64_t rest = m;
            for (int i = k - 1; i >= 0; --i) {
              size_t idx = static_cast<size_t>(rest % candidates.size());
              rest /= candidates.size();
              env[vars[i]] = candidates[idx];
              t.insert(t.begin(), candidates[idx]);
            }
            Result<bool> holds = worker.Eval(planned, env);
            if (!holds.ok()) {
              errors[c] = holds.status();
              return;
            }
            if (*holds) partial[c].push_back(std::move(t));
          }
        });
    for (uint64_t c = 0; c < chunks; ++c) {
      STRQ_RETURN_IF_ERROR(errors[c]);
      for (Tuple& t : partial[c]) out.push_back(std::move(t));
    }
    observe_latency();
    return Relation::Create(k, std::move(out));
  }

  // Odometer over candidates^k.
  std::vector<size_t> index(k, 0);
  uint64_t polled = 0;
  while (true) {
    if ((polled++ & 255) == 0) STRQ_RETURN_IF_ERROR(CheckDeadline());
    Env env;
    Tuple t;
    for (int i = 0; i < k; ++i) {
      env[vars[i]] = candidates[index[i]];
      t.push_back(candidates[index[i]]);
    }
    STRQ_ASSIGN_OR_RETURN(bool holds, eval.Eval(planned, env));
    if (holds) out.push_back(std::move(t));
    // Advance odometer.
    int pos = k - 1;
    while (pos >= 0 && ++index[pos] == candidates.size()) {
      index[pos] = 0;
      --pos;
    }
    if (pos < 0) break;
    if (k == 0) break;
  }
  observe_latency();
  return Relation::Create(k, std::move(out));
}

std::vector<std::string> RestrictedEvaluator::PrefixDomCandidates() const {
  if (domain_provider_ != nullptr) {
    std::optional<std::vector<std::string>> closure =
        domain_provider_->PrefixClosureAt(db_->revision());
    if (closure.has_value()) return *std::move(closure);
  }
  return PrefixClosure(db_->ActiveDomain());
}

std::optional<std::vector<std::string>> RestrictedEvaluator::ProvidedAdom()
    const {
  if (domain_provider_ == nullptr) return std::nullopt;
  return domain_provider_->ActiveDomainAt(db_->revision());
}

Result<std::vector<std::string>> RestrictedEvaluator::LenDomCandidates()
    const {
  size_t max_len = db_->MaxAdomLength();
  double count = 1;
  for (size_t i = 0; i < max_len; ++i) {
    count *= db_->alphabet().size();
    count += 1;
    if (count > static_cast<double>(options_.max_len_candidates)) {
      return ResourceExhaustedError("↓adom candidate set too large");
    }
  }
  std::string chars;
  for (int i = 0; i < db_->alphabet().size(); ++i) {
    chars.push_back(db_->alphabet().CharOf(static_cast<Symbol>(i)));
  }
  return AllStringsUpToLength(chars, static_cast<int>(max_len));
}

}  // namespace strq
