#include "eval/restricted_eval.h"

#include <algorithm>
#include <chrono>
#include <iterator>
#include <set>

#include "automata/dfa.h"
#include "automata/levenshtein.h"
#include "automata/like.h"
#include "automata/regex.h"
#include "base/budget.h"
#include "base/string_ops.h"
#include "obs/trace.h"

namespace strq {

namespace {

using Env = std::map<std::string, std::string>;

class Evaluator {
 public:
  // `adom` is an optional precomputed active domain (the incremental
  // domain provider's maintained view); null means scan the database.
  // `provider` (optional) additionally serves trie-indexed views for
  // DFA-guided candidate pruning.
  Evaluator(const Database* db, const RestrictedEvaluator::Options& options,
            AtomCache* cache, const std::vector<std::string>* adom = nullptr,
            const DomainProvider* provider = nullptr)
      : db_(db), options_(options), cache_(cache), provider_(provider) {
    adom_ = adom != nullptr ? *adom : db_->ActiveDomain();
  }

  Result<bool> Eval(const FormulaPtr& f, Env& env) {
    switch (f->kind) {
      case FormulaKind::kTrue:
        return true;
      case FormulaKind::kFalse:
        return false;
      case FormulaKind::kPred:
        return EvalPred(*f, env);
      case FormulaKind::kRelation:
        return EvalRelation(*f, env);
      case FormulaKind::kNot: {
        STRQ_ASSIGN_OR_RETURN(bool v, Eval(f->left, env));
        return !v;
      }
      case FormulaKind::kAnd: {
        STRQ_ASSIGN_OR_RETURN(bool a, Eval(f->left, env));
        if (!a) return false;
        return Eval(f->right, env);
      }
      case FormulaKind::kOr: {
        STRQ_ASSIGN_OR_RETURN(bool a, Eval(f->left, env));
        if (a) return true;
        return Eval(f->right, env);
      }
      case FormulaKind::kImplies: {
        STRQ_ASSIGN_OR_RETURN(bool a, Eval(f->left, env));
        if (!a) return true;
        return Eval(f->right, env);
      }
      case FormulaKind::kIff: {
        STRQ_ASSIGN_OR_RETURN(bool a, Eval(f->left, env));
        STRQ_ASSIGN_OR_RETURN(bool b, Eval(f->right, env));
        return a == b;
      }
      case FormulaKind::kExists:
      case FormulaKind::kForall:
        return EvalQuantifier(*f, env);
    }
    return InternalError("unknown formula kind");
  }

 private:
  Result<std::string> EvalTerm(const TermPtr& t, const Env& env) {
    switch (t->kind) {
      case TermKind::kVar: {
        auto it = env.find(t->var);
        if (it == env.end()) {
          return InternalError("unbound variable " + t->var);
        }
        return it->second;
      }
      case TermKind::kConst:
        return t->text;
      case TermKind::kAppend: {
        STRQ_ASSIGN_OR_RETURN(std::string v, EvalTerm(t->arg0, env));
        return AppendLast(v, t->letter);
      }
      case TermKind::kPrepend: {
        STRQ_ASSIGN_OR_RETURN(std::string v, EvalTerm(t->arg0, env));
        return PrependFirst(v, t->letter);
      }
      case TermKind::kTrim: {
        STRQ_ASSIGN_OR_RETURN(std::string v, EvalTerm(t->arg0, env));
        return TrimLeading(v, t->letter);
      }
      case TermKind::kLcp: {
        STRQ_ASSIGN_OR_RETURN(std::string a, EvalTerm(t->arg0, env));
        STRQ_ASSIGN_OR_RETURN(std::string b, EvalTerm(t->arg1, env));
        return LongestCommonPrefix(a, b);
      }
      case TermKind::kInsert: {
        STRQ_ASSIGN_OR_RETURN(std::string a, EvalTerm(t->arg0, env));
        STRQ_ASSIGN_OR_RETURN(std::string b, EvalTerm(t->arg1, env));
        return InsertAfterPrefix(a, b, t->letter);
      }
      case TermKind::kConcat: {
        // Direct term evaluation is well-defined even for concatenation;
        // only quantification over Σ* is problematic (src/concat).
        STRQ_ASSIGN_OR_RETURN(std::string a, EvalTerm(t->arg0, env));
        STRQ_ASSIGN_OR_RETURN(std::string b, EvalTerm(t->arg1, env));
        return a + b;
      }
    }
    return InternalError("unknown term kind");
  }

  // Patterns are compiled (and served) through the shared AtomCache, so a
  // pattern compiled by any engine is reused by every other one.
  Result<DfaRef> Pattern(const std::string& pattern, PatternSyntax syntax) {
    return cache_->CompiledPattern(pattern, syntax);
  }

  Result<bool> EvalPred(const Formula& f, const Env& env) {
    std::vector<std::string> args;
    for (const TermPtr& t : f.args) {
      STRQ_ASSIGN_OR_RETURN(std::string v, EvalTerm(t, env));
      args.push_back(std::move(v));
    }
    switch (f.pred) {
      case PredKind::kEq:
        return args[0] == args[1];
      case PredKind::kPrefix:
        return IsPrefix(args[0], args[1]);
      case PredKind::kStrictPrefix:
        return IsStrictPrefix(args[0], args[1]);
      case PredKind::kOneStep:
        return IsOneStepExtension(args[0], args[1]);
      case PredKind::kLast:
        return LastSymbolIs(args[0], f.letter);
      case PredKind::kEqLen:
        return EqualLength(args[0], args[1]);
      case PredKind::kLeqLen:
        return args[0].size() <= args[1].size();
      case PredKind::kLexLeq: {
        // The alphabet order gives the symbol order (Section 4).
        std::string order;
        for (int i = 0; i < db_->alphabet().size(); ++i) {
          order.push_back(db_->alphabet().CharOf(static_cast<Symbol>(i)));
        }
        return LexLeq(args[0], args[1], order);
      }
      case PredKind::kAdom:
        return std::binary_search(adom_.begin(), adom_.end(), args[0]);
      case PredKind::kLike:
        return LikeMatch(args[0], f.pattern);
      case PredKind::kMember: {
        STRQ_ASSIGN_OR_RETURN(DfaRef lang, Pattern(f.pattern, f.syntax));
        return lang->AcceptsString(db_->alphabet(), args[0]);
      }
      case PredKind::kSuffixIn: {
        if (!IsPrefix(args[0], args[1])) return false;
        STRQ_ASSIGN_OR_RETURN(DfaRef lang, Pattern(f.pattern, f.syntax));
        return lang->AcceptsString(db_->alphabet(),
                                   RelativeSuffix(args[1], args[0]));
      }
      case PredKind::kNear:
        // Ground edit-distance check: the banded DP, no automaton. The
        // differential fuzz pits this against Engine A's Levenshtein DFA.
        return WithinEditDistance(args[0], f.pattern, f.distance);
    }
    return InternalError("unknown predicate");
  }

  Result<bool> EvalRelation(const Formula& f, const Env& env) {
    const Relation* rel = db_->Find(f.relation);
    if (rel == nullptr) {
      return InvalidArgumentError("unknown relation " + f.relation);
    }
    if (static_cast<int>(f.args.size()) != rel->arity()) {
      return InvalidArgumentError("relation " + f.relation +
                                  " arity mismatch");
    }
    Tuple t;
    for (const TermPtr& arg : f.args) {
      STRQ_ASSIGN_OR_RETURN(std::string v, EvalTerm(arg, env));
      t.push_back(std::move(v));
    }
    return rel->Contains(t);
  }

  // Parameter values of a quantifier: the body's free variables (minus the
  // bound one) as bound in the current environment.
  static std::set<std::string> Params(const Formula& f, const Env& env) {
    std::set<std::string> params;
    std::set<std::string> fv = FreeVars(f.left);
    fv.erase(f.var);
    for (const std::string& name : fv) {
      auto it = env.find(name);
      if (it != env.end()) params.insert(it->second);
    }
    return params;
  }

  // Guard atoms on the quantified variable found on the body's conjunct
  // spine: pattern predicates (LIKE/regex/SIMILAR membership, ~k edit
  // distance) applied to the bare variable. Each is a necessary condition
  // for the body, so an ∃ may soundly enumerate only the strings every
  // guard accepts. Disjuncts, negations, etc. stop the walk — an atom under
  // them is not necessary.
  static void CollectGuards(const FormulaPtr& f, const std::string& var,
                            std::vector<const Formula*>* out) {
    if (f->kind == FormulaKind::kAnd) {
      CollectGuards(f->left, var, out);
      CollectGuards(f->right, var, out);
      return;
    }
    if (f->kind != FormulaKind::kPred) return;
    if (f->pred != PredKind::kMember && f->pred != PredKind::kLike &&
        f->pred != PredKind::kNear) {
      return;
    }
    if (f->args.size() != 1 || f->args[0]->kind != TermKind::kVar ||
        f->args[0]->var != var) {
      return;
    }
    out->push_back(f.get());
  }

  // Trie over the active domain (built locally unless the provider
  // maintains one for this revision). Null disables pruning.
  std::shared_ptr<const DomainTrie> AdomTrie() {
    if (adom_trie_ != nullptr) return adom_trie_;
    if (provider_ != nullptr) {
      adom_trie_ = provider_->AdomTrieAt(db_->revision());
      if (adom_trie_ != nullptr) return adom_trie_;
    }
    Result<std::shared_ptr<const DomainTrie>> built =
        DomainTrie::Build(db_->alphabet(), adom_);
    if (built.ok()) adom_trie_ = *std::move(built);
    return adom_trie_;
  }

  // Trie over prefix(adom). Null disables pruning.
  std::shared_ptr<const DomainTrie> PrefixTrie() {
    if (prefix_trie_ != nullptr) return prefix_trie_;
    if (provider_ != nullptr) {
      prefix_trie_ = provider_->PrefixTrieAt(db_->revision());
      if (prefix_trie_ != nullptr) return prefix_trie_;
    }
    Result<std::shared_ptr<const DomainTrie>> built =
        DomainTrie::Build(db_->alphabet(), PrefixClosure(adom_));
    if (built.ok()) prefix_trie_ = *std::move(built);
    return prefix_trie_;
  }

  // DFA-guided candidate pruning for an ∃ over adom / prefix(adom):
  // instead of enumerating the full candidate set and testing the body on
  // each, walk the domain trie and the guard DFAs in lockstep, cutting a
  // subtree the moment some guard goes dead. Returns nullopt when pruning
  // does not apply (∀, no guards, length/plain ranges, foreign parameter
  // characters) — the caller then falls back to full enumeration. The
  // enumerated + pruned counters always sum to the full candidate count.
  Result<std::optional<std::vector<std::string>>> PrunedCandidates(
      const Formula& f, const std::set<std::string>& params) {
    std::optional<std::vector<std::string>> none;
    if (f.kind != FormulaKind::kExists) return none;
    if (f.range != QuantRange::kAdom && f.range != QuantRange::kPrefixDom) {
      return none;
    }
    std::vector<const Formula*> guards;
    CollectGuards(f.left, f.var, &guards);
    if (guards.empty()) return none;
    std::shared_ptr<const DomainTrie> trie =
        f.range == QuantRange::kAdom ? AdomTrie() : PrefixTrie();
    if (trie == nullptr) return none;
    // Parameter prefix-closures may stray outside the alphabet; fall back
    // (the full enumeration reproduces the original error behaviour).
    std::vector<std::string> extra;
    if (f.range == QuantRange::kPrefixDom && !params.empty()) {
      extra = PrefixClosure(
          std::vector<std::string>(params.begin(), params.end()));
      for (const std::string& s : extra) {
        if (!db_->alphabet().Encode(s).ok()) return none;
      }
    }
    std::vector<std::string> matched;
    int64_t full = trie->size();
    if (trie->size() > 0 || !extra.empty()) {
      std::vector<DfaRef> refs;
      std::vector<const Dfa*> dfas;
      for (const Formula* g : guards) {
        DfaRef lang;
        if (g->pred == PredKind::kNear) {
          STRQ_ASSIGN_OR_RETURN(lang,
                                cache_->CompiledNear(g->pattern, g->distance));
        } else {
          STRQ_ASSIGN_OR_RETURN(lang,
                                cache_->CompiledPattern(g->pattern, g->syntax));
        }
        dfas.push_back(&*lang);
        refs.push_back(std::move(lang));
      }
      if (trie->size() > 0) matched = trie->Matching(dfas, nullptr);
      // The same DFAs decide the parameter-closure strings not already in
      // the stored set; both sides are sorted, so merge preserves order.
      std::vector<std::string> add;
      for (const std::string& s : extra) {
        if (trie->Contains(s)) continue;
        ++full;
        bool all = true;
        for (const Dfa* d : dfas) {
          Result<bool> acc = d->AcceptsString(db_->alphabet(), s);
          if (!acc.ok() || !*acc) {
            all = false;
            break;
          }
        }
        if (all) add.push_back(s);
      }
      if (!add.empty()) {
        std::vector<std::string> merged;
        merged.reserve(matched.size() + add.size());
        std::merge(matched.begin(), matched.end(), add.begin(), add.end(),
                   std::back_inserter(merged));
        matched = std::move(merged);
      }
    }
    obs::Count(obs::kRestrictedCandidates,
               static_cast<int64_t>(matched.size()));
    obs::Count(obs::kRestrictedCandidatesPruned,
               full - static_cast<int64_t>(matched.size()));
    return std::optional<std::vector<std::string>>(std::move(matched));
  }

  // Candidate strings for a restricted quantifier, given the parameter
  // values (free variables of the body in the current environment).
  Result<std::vector<std::string>> Candidates(
      const Formula& f, const std::set<std::string>& params) {
    switch (f.range) {
      case QuantRange::kAll: {
        if (!options_.all_quantifier_bound.has_value()) {
          return UnsupportedError(
              "plain quantifier in the restricted evaluator; apply the "
              "collapse (Theorem 1 / Theorem 2) or use the automata engine");
        }
        std::string chars;
        for (int i = 0; i < db_->alphabet().size(); ++i) {
          chars.push_back(db_->alphabet().CharOf(static_cast<Symbol>(i)));
        }
        return AllStringsUpToLength(chars, *options_.all_quantifier_bound);
      }
      case QuantRange::kAdom:
        return adom_;
      case QuantRange::kPrefixDom: {
        std::vector<std::string> base = adom_;
        base.insert(base.end(), params.begin(), params.end());
        return PrefixClosure(base);
      }
      case QuantRange::kLenDom: {
        size_t max_len = 0;
        for (const std::string& s : adom_) max_len = std::max(max_len, s.size());
        for (const std::string& s : params) {
          max_len = std::max(max_len, s.size());
        }
        // |Σ|^(maxlen+1) candidate budget check before enumerating.
        double count = 1;
        for (size_t i = 0; i < max_len; ++i) {
          count *= db_->alphabet().size();
          count += 1;
          if (count > static_cast<double>(options_.max_len_candidates)) {
            return ResourceExhaustedError(
                "length-restricted quantifier candidate set too large");
          }
        }
        std::string chars;
        for (int i = 0; i < db_->alphabet().size(); ++i) {
          chars.push_back(db_->alphabet().CharOf(static_cast<Symbol>(i)));
        }
        return AllStringsUpToLength(chars, static_cast<int>(max_len));
      }
    }
    return InternalError("unknown range");
  }

  Result<bool> EvalQuantifier(const Formula& f, Env& env) {
    std::set<std::string> params = Params(f, env);
    STRQ_ASSIGN_OR_RETURN(std::optional<std::vector<std::string>> pruned,
                          PrunedCandidates(f, params));
    std::vector<std::string> candidates;
    if (pruned.has_value()) {
      candidates = *std::move(pruned);
    } else {
      STRQ_ASSIGN_OR_RETURN(candidates, Candidates(f, params));
      obs::Count(obs::kRestrictedCandidates,
                 static_cast<int64_t>(candidates.size()));
    }
    bool is_forall = f.kind == FormulaKind::kForall;
    auto saved = env.find(f.var);
    std::optional<std::string> shadowed;
    if (saved != env.end()) shadowed = saved->second;
    bool result = is_forall;
    for (const std::string& c : candidates) {
      env[f.var] = c;
      Result<bool> v = Eval(f.left, env);
      if (!v.ok()) {
        RestoreVar(env, f.var, shadowed);
        return v.status();
      }
      if (is_forall && !*v) {
        result = false;
        break;
      }
      if (!is_forall && *v) {
        result = true;
        break;
      }
    }
    RestoreVar(env, f.var, shadowed);
    return result;
  }

  static void RestoreVar(Env& env, const std::string& var,
                         const std::optional<std::string>& shadowed) {
    if (shadowed.has_value()) {
      env[var] = *shadowed;
    } else {
      env.erase(var);
    }
  }

  const Database* db_;
  RestrictedEvaluator::Options options_;
  AtomCache* cache_;
  const DomainProvider* provider_;
  std::vector<std::string> adom_;
  std::shared_ptr<const DomainTrie> adom_trie_;
  std::shared_ptr<const DomainTrie> prefix_trie_;
};

}  // namespace

RestrictedEvaluator::RestrictedEvaluator(const Database* db, Options options)
    : RestrictedEvaluator(db, options, nullptr) {}

RestrictedEvaluator::RestrictedEvaluator(const Database* db, Options options,
                                         std::shared_ptr<AtomCache> cache)
    : db_(db), options_(options), cache_(std::move(cache)) {
  if (cache_ == nullptr || !(cache_->alphabet() == db_->alphabet())) {
    cache_ = std::make_shared<AtomCache>(db_->alphabet());
  }
  planner_ = std::make_shared<plan::Planner>();
}

void RestrictedEvaluator::set_planner(std::shared_ptr<plan::Planner> planner) {
  planner_ = std::move(planner);
  if (planner_ == nullptr) planner_ = std::make_shared<plan::Planner>();
}

Result<bool> RestrictedEvaluator::Holds(
    const FormulaPtr& f, const std::map<std::string, std::string>& assignment) {
  obs::Span span("restricted.holds");
  FormulaPtr planned = planner_->Plan(f, db_, cache_.get()).formula;
  std::optional<std::vector<std::string>> adom = ProvidedAdom();
  Evaluator eval(db_, options_, cache_.get(), adom ? &*adom : nullptr,
                 domain_provider_.get());
  Env env = assignment;
  return eval.Eval(planned, env);
}

Result<bool> RestrictedEvaluator::EvaluateSentence(const FormulaPtr& f) {
  if (!FreeVars(f).empty()) {
    return InvalidArgumentError("sentence expected, found free variables");
  }
  return Holds(f, {});
}

Result<Relation> RestrictedEvaluator::EvaluateOnCandidates(
    const FormulaPtr& f, const std::vector<std::string>& candidates) {
  obs::Span span("restricted.evaluate_on_candidates");
  span.Attr("candidates", static_cast<int64_t>(candidates.size()));
  auto latency_start = std::chrono::steady_clock::now();
  auto observe_latency = [&latency_start] {
    obs::Observe(obs::kHistQueryLatencyNs,
                 std::chrono::duration_cast<std::chrono::nanoseconds>(
                     std::chrono::steady_clock::now() - latency_start)
                     .count());
  };
  // Columns come from the ORIGINAL formula: planning may eliminate a
  // variable, but the advertised column set must not change (the dropped
  // column is then unconstrained over the candidates, as before planning).
  std::set<std::string> fv = FreeVars(f);
  std::vector<std::string> vars(fv.begin(), fv.end());
  FormulaPtr planned = planner_->Plan(f, db_, cache_.get()).formula;
  int k = static_cast<int>(vars.size());
  std::vector<Tuple> out;
  std::optional<std::vector<std::string>> adom = ProvidedAdom();
  const std::vector<std::string>* adom_ptr = adom ? &*adom : nullptr;
  Evaluator eval(db_, options_, cache_.get(), adom_ptr,
                 domain_provider_.get());

  if (candidates.empty() && k > 0) return Relation::Create(k, {});

  // Parallel path: partition the candidates^k assignment space into one
  // contiguous block per thread. Every assignment has a rank (its odometer
  // value read as a base-|candidates| number), so blocks enumerate exactly
  // the same tuples in exactly the same order as the serial odometer, and
  // concatenating the per-block outputs reproduces the serial answer
  // byte-for-byte.
  int threads = parallel_.EffectiveThreads();
  double total_est = 1;
  for (int i = 0; i < k; ++i) total_est *= static_cast<double>(candidates.size());
  if (threads > 1 && k > 0 && total_est >= 2 && total_est <= 4e9) {
    uint64_t total = 1;
    for (int i = 0; i < k; ++i) total *= candidates.size();
    uint64_t chunks = std::min<uint64_t>(threads, total);
    std::vector<std::vector<Tuple>> partial(chunks);
    std::vector<Status> errors(chunks, Status::Ok());
    ThreadPool::ParallelFor(
        parallel_.num_threads, static_cast<int>(chunks), [&](int c) {
          uint64_t lo = total * c / chunks;
          uint64_t hi = total * (c + 1) / chunks;
          Evaluator worker(db_, options_, cache_.get(), adom_ptr,
                           domain_provider_.get());
          for (uint64_t m = lo; m < hi; ++m) {
            // Per-request deadline, polled at candidate-chunk granularity.
            if (((m - lo) & 255) == 0) {
              Status deadline = CheckDeadline();
              if (!deadline.ok()) {
                errors[c] = deadline;
                return;
              }
            }
            Env env;
            Tuple t;
            uint64_t rest = m;
            for (int i = k - 1; i >= 0; --i) {
              size_t idx = static_cast<size_t>(rest % candidates.size());
              rest /= candidates.size();
              env[vars[i]] = candidates[idx];
              t.insert(t.begin(), candidates[idx]);
            }
            Result<bool> holds = worker.Eval(planned, env);
            if (!holds.ok()) {
              errors[c] = holds.status();
              return;
            }
            if (*holds) partial[c].push_back(std::move(t));
          }
        });
    for (uint64_t c = 0; c < chunks; ++c) {
      STRQ_RETURN_IF_ERROR(errors[c]);
      for (Tuple& t : partial[c]) out.push_back(std::move(t));
    }
    observe_latency();
    return Relation::Create(k, std::move(out));
  }

  // Odometer over candidates^k.
  std::vector<size_t> index(k, 0);
  uint64_t polled = 0;
  while (true) {
    if ((polled++ & 255) == 0) STRQ_RETURN_IF_ERROR(CheckDeadline());
    Env env;
    Tuple t;
    for (int i = 0; i < k; ++i) {
      env[vars[i]] = candidates[index[i]];
      t.push_back(candidates[index[i]]);
    }
    STRQ_ASSIGN_OR_RETURN(bool holds, eval.Eval(planned, env));
    if (holds) out.push_back(std::move(t));
    // Advance odometer.
    int pos = k - 1;
    while (pos >= 0 && ++index[pos] == candidates.size()) {
      index[pos] = 0;
      --pos;
    }
    if (pos < 0) break;
    if (k == 0) break;
  }
  observe_latency();
  return Relation::Create(k, std::move(out));
}

Result<std::vector<Tuple>> RestrictedEvaluator::TopKOnCandidates(
    const FormulaPtr& f, const std::vector<std::string>& candidates,
    size_t k) {
  obs::Span span("restricted.topk");
  span.Attr("candidates", static_cast<int64_t>(candidates.size()));
  std::set<std::string> fv = FreeVars(f);
  std::vector<std::string> vars(fv.begin(), fv.end());
  FormulaPtr planned = planner_->Plan(f, db_, cache_.get()).formula;
  int arity = static_cast<int>(vars.size());
  std::optional<std::vector<std::string>> adom = ProvidedAdom();
  Evaluator eval(db_, options_, cache_.get(), adom ? &*adom : nullptr,
                 domain_provider_.get());
  std::vector<Tuple> out;
  if (k == 0) return out;
  if (candidates.empty() && arity > 0) return out;
  const size_t limit = std::min(k, CurrentMaxAnswerTuples(k));
  // Serial odometer, stopping at the k-th answer: the output is a prefix of
  // EvaluateOnCandidates' tuple order by construction.
  std::vector<size_t> index(arity, 0);
  uint64_t polled = 0;
  while (true) {
    if ((polled++ & 255) == 0) STRQ_RETURN_IF_ERROR(CheckDeadline());
    Env env;
    Tuple t;
    for (int i = 0; i < arity; ++i) {
      env[vars[i]] = candidates[index[i]];
      t.push_back(candidates[index[i]]);
    }
    STRQ_ASSIGN_OR_RETURN(bool holds, eval.Eval(planned, env));
    if (holds) {
      out.push_back(std::move(t));
      if (out.size() == limit) {
        if (limit < k) {
          return ResourceExhaustedError(
              "top-k answer budget exceeded (max_answer_tuples)");
        }
        break;
      }
    }
    int pos = arity - 1;
    while (pos >= 0 && ++index[pos] == candidates.size()) {
      index[pos] = 0;
      --pos;
    }
    if (pos < 0) break;
  }
  return out;
}

Result<std::optional<Tuple>> RestrictedEvaluator::ExistsWitnessOnCandidates(
    const FormulaPtr& f, const std::vector<std::string>& candidates) {
  STRQ_ASSIGN_OR_RETURN(std::vector<Tuple> first,
                        TopKOnCandidates(f, candidates, 1));
  if (first.empty()) return std::optional<Tuple>();
  return std::optional<Tuple>(std::move(first[0]));
}

std::vector<std::string> RestrictedEvaluator::PrefixDomCandidates() const {
  if (domain_provider_ != nullptr) {
    std::optional<std::vector<std::string>> closure =
        domain_provider_->PrefixClosureAt(db_->revision());
    if (closure.has_value()) return *std::move(closure);
  }
  return PrefixClosure(db_->ActiveDomain());
}

std::optional<std::vector<std::string>> RestrictedEvaluator::ProvidedAdom()
    const {
  if (domain_provider_ == nullptr) return std::nullopt;
  return domain_provider_->ActiveDomainAt(db_->revision());
}

Result<std::vector<std::string>> RestrictedEvaluator::LenDomCandidates()
    const {
  size_t max_len = db_->MaxAdomLength();
  double count = 1;
  for (size_t i = 0; i < max_len; ++i) {
    count *= db_->alphabet().size();
    count += 1;
    if (count > static_cast<double>(options_.max_len_candidates)) {
      return ResourceExhaustedError("↓adom candidate set too large");
    }
  }
  std::string chars;
  for (int i = 0; i < db_->alphabet().size(); ++i) {
    chars.push_back(db_->alphabet().CharOf(static_cast<Symbol>(i)));
  }
  return AllStringsUpToLength(chars, static_cast<int>(max_len));
}

}  // namespace strq
