#include "eval/explain.h"

#include <chrono>
#include <cstdio>

#include "eval/automata_eval.h"

namespace strq {

namespace {

int64_t ElapsedNs(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - since)
      .count();
}

}  // namespace

Result<ExplainAnalyzeResult> ExplainAnalyze(
    const Database* db, const FormulaPtr& f, size_t max_tuples,
    std::shared_ptr<AtomCache> cache, std::shared_ptr<plan::Planner> planner,
    ParallelOptions parallel) {
  ExplainAnalyzeResult result;
  result.columns = AutomataEvaluator::FreeVarOrder(f);

  // Default to a private store + cache so the trace reflects the full cost
  // of this query alone. The automata only borrow the store for the scope of
  // this call; nothing store-backed escapes in the result (the answer is
  // materialized to strings).
  AutomatonStore local_store(true);
  if (cache == nullptr) {
    cache = std::make_shared<AtomCache>(db->alphabet(), &local_store);
  }

  obs::ScopedEnable enable(true);
  std::map<std::string, int64_t> before =
      obs::MetricsRegistry::Global().Snapshot();
  obs::TraceSession session("explain");
  auto start = std::chrono::steady_clock::now();

  AutomataEvaluator engine(db, cache, planner);
  engine.set_parallel_options(parallel);
  // Plan phase: run the planner explicitly so the chosen plan (with its
  // per-node estimates) lands in the result; the Compile below re-plans the
  // same formula and is served by the plan cache, so the work is done once.
  auto plan_start = std::chrono::steady_clock::now();
  plan::PlannedQuery planned =
      engine.planner()->Plan(f, db, cache.get());
  obs::Observe(obs::kHistPlanNs, ElapsedNs(plan_start));
  result.plan_pretty = planned.pretty;
  result.planned_formula =
      planned.formula != nullptr ? ToString(planned.formula) : ToString(f);
  result.plan_estimated_states = planned.estimated_states;
  result.plan_rules_fired = planned.rules_fired;
  result.plan_shared_subplans = planned.shared_subplans;
  result.plan_cache_hit = planned.cache_hit;
  auto compile_start = std::chrono::steady_clock::now();
  STRQ_ASSIGN_OR_RETURN(TrackAutomaton rel, engine.Compile(f));
  obs::Observe(obs::kHistCompileNs, ElapsedNs(compile_start));
  result.answer_states = rel.NumStates();
  result.answer_transitions = rel.NumTransitions();
  result.finite = rel.IsFinite();
  if (result.finite) {
    obs::Span span("eval.enumerate");
    span.Attr("answer_states", rel.NumStates());
    auto enum_start = std::chrono::steady_clock::now();
    STRQ_ASSIGN_OR_RETURN(std::vector<Tuple> tuples, rel.AllTuples(max_tuples));
    obs::Observe(obs::kHistEnumerateNs, ElapsedNs(enum_start));
    span.Attr("tuples", static_cast<int64_t>(tuples.size()));
    obs::Count(obs::kEvalTuplesEnumerated,
               static_cast<int64_t>(tuples.size()));
    STRQ_ASSIGN_OR_RETURN(result.answer,
                          Relation::Create(rel.arity(), std::move(tuples)));
  } else {
    result.answer = Relation::Empty(rel.arity());
  }

  obs::Observe(obs::kHistQueryLatencyNs, ElapsedNs(start));
  result.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  result.trace = session.Take();
  result.trace->seconds = result.seconds;
  result.metrics =
      obs::MetricsDelta(before, obs::MetricsRegistry::Global().Snapshot());
  result.histograms = obs::MetricsRegistry::Global().HistSnapshot();
  result.memory = obs::MemSnapshot();
  return result;
}

std::string ExplainAnalyzeResult::Pretty() const {
  std::string out;
  char buf[160];
  std::string cols;
  for (size_t i = 0; i < columns.size(); ++i) {
    if (i > 0) cols += ", ";
    cols += columns[i];
  }
  std::snprintf(buf, sizeof(buf),
                "EXPLAIN ANALYZE  %.6fs  answer: %s, %d states, ",
                seconds, finite ? "finite" : "INFINITE", answer_states);
  out += buf;
  if (finite) {
    std::snprintf(buf, sizeof(buf), "%zu tuple(s) over (%s)\n", answer.size(),
                  cols.c_str());
  } else {
    std::snprintf(buf, sizeof(buf), "not enumerated, over (%s)\n",
                  cols.c_str());
  }
  out += buf;
  if (!plan_pretty.empty()) {
    std::snprintf(buf, sizeof(buf),
                  "plan: est %.0f states, %lld rule(s) fired, %lld shared "
                  "subplan(s)%s\n",
                  plan_estimated_states,
                  static_cast<long long>(plan_rules_fired),
                  static_cast<long long>(plan_shared_subplans),
                  plan_cache_hit ? ", plan-cache hit" : "");
    out += buf;
    out += plan_pretty;
    if (!planned_formula.empty()) {
      out += "planned: " + planned_formula + "\n";
    }
  }
  if (trace != nullptr) out += PrettyTrace(*trace);
  if (!metrics.empty()) {
    out += "metrics:\n";
    for (const auto& [name, value] : metrics) {
      std::snprintf(buf, sizeof(buf), "  %-32s %lld\n", name.c_str(),
                    static_cast<long long>(value));
      out += buf;
    }
  }
  if (!histograms.empty()) {
    out += "latency (cumulative):\n";
    for (const auto& [name, h] : histograms) {
      std::snprintf(buf, sizeof(buf),
                    "  %-24s n=%lld p50=%.0fns p90=%.0fns p99=%.0fns\n",
                    name.c_str(), static_cast<long long>(h.count), h.p50,
                    h.p90, h.p99);
      out += buf;
    }
  }
  if (!memory.empty()) {
    out += "memory:\n";
    for (const auto& [name, bytes] : memory) {
      std::snprintf(buf, sizeof(buf), "  %-24s %lld bytes\n", name.c_str(),
                    static_cast<long long>(bytes));
      out += buf;
    }
  }
  return out;
}

obs::JsonValue ExplainAnalyzeResult::ToJson() const {
  obs::JsonValue out = obs::JsonValue::Object();
  out.Set("schema", obs::JsonValue::Str("strq.explain.v1"));
  obs::JsonValue cols = obs::JsonValue::Array();
  for (const std::string& c : columns) cols.Append(obs::JsonValue::Str(c));
  out.Set("columns", std::move(cols));
  obs::JsonValue answer_obj = obs::JsonValue::Object();
  answer_obj.Set("finite", obs::JsonValue::Bool(finite));
  answer_obj.Set("states", obs::JsonValue::Int(answer_states));
  answer_obj.Set("transitions", obs::JsonValue::Int(answer_transitions));
  answer_obj.Set("tuples", obs::JsonValue::Int(
                               static_cast<int64_t>(answer.size())));
  out.Set("answer", std::move(answer_obj));
  obs::JsonValue plan_obj = obs::JsonValue::Object();
  plan_obj.Set("estimated_states",
               obs::JsonValue::Number(plan_estimated_states));
  plan_obj.Set("rules_fired", obs::JsonValue::Int(plan_rules_fired));
  plan_obj.Set("shared_subplans", obs::JsonValue::Int(plan_shared_subplans));
  plan_obj.Set("cache_hit", obs::JsonValue::Bool(plan_cache_hit));
  plan_obj.Set("formula", obs::JsonValue::Str(planned_formula));
  plan_obj.Set("tree", obs::JsonValue::Str(plan_pretty));
  out.Set("plan", std::move(plan_obj));
  out.Set("seconds", obs::JsonValue::Number(seconds));
  if (trace != nullptr) out.Set("trace", obs::TraceToJson(*trace));
  out.Set("metrics", obs::MetricsToJson(metrics));
  out.Set("histograms", obs::HistogramsToJson(histograms));
  obs::JsonValue mem = obs::JsonValue::Object();
  for (const auto& [name, bytes] : memory) {
    mem.Set(name, obs::JsonValue::Int(bytes));
  }
  out.Set("memory", std::move(mem));
  return out;
}

}  // namespace strq
