#include "eval/algebra_eval.h"

#include <algorithm>
#include <chrono>
#include <set>

#include "base/budget.h"
#include "base/string_ops.h"
#include "obs/trace.h"

namespace strq {

namespace {

const char* RaSpanName(RaKind kind) {
  switch (kind) {
    case RaKind::kScan: return "ra.scan";
    case RaKind::kEpsilon: return "ra.epsilon";
    case RaKind::kSelect: return "ra.select";
    case RaKind::kProject: return "ra.project";
    case RaKind::kProduct: return "ra.product";
    case RaKind::kUnion: return "ra.union";
    case RaKind::kDifference: return "ra.difference";
    case RaKind::kPrefix: return "ra.prefix";
    case RaKind::kAddRight: return "ra.add_right";
    case RaKind::kAddLeft: return "ra.add_left";
    case RaKind::kTrimLeft: return "ra.trim_left";
    case RaKind::kInsert: return "ra.insert";
    case RaKind::kDown: return "ra.down";
  }
  return "ra";
}

}  // namespace

AlgebraEvaluator::AlgebraEvaluator(const Database* db, Options options)
    : db_(db), options_(options), formula_engine_(db) {}

AlgebraEvaluator::AlgebraEvaluator(const Database* db, Options options,
                                   std::shared_ptr<AtomCache> cache)
    : db_(db), options_(options), formula_engine_(db, std::move(cache)) {}

Status AlgebraEvaluator::CheckBudget(size_t size) const {
  // Per-request deadline and tuple budget piggyback on the evaluator's own
  // budget poll points: the request's max_answer_tuples can only tighten
  // the configured intermediate-result bound.
  STRQ_RETURN_IF_ERROR(CheckDeadline());
  if (size > CurrentMaxAnswerTuples(options_.max_tuples)) {
    return ResourceExhaustedError("algebra intermediate result over budget");
  }
  return Status::Ok();
}

Result<Relation> AlgebraEvaluator::Evaluate(const RaPtr& expr) {
  // The memo is per top-level call: raw-pointer keys are only stable while
  // the caller keeps the plan alive, and plans share subtrees within one
  // evaluation (notably the universe expression of the safe translation).
  memo_.clear();
  auto start = std::chrono::steady_clock::now();
  Result<Relation> out = Eval(expr);
  obs::Observe(obs::kHistQueryLatencyNs,
               std::chrono::duration_cast<std::chrono::nanoseconds>(
                   std::chrono::steady_clock::now() - start)
                   .count());
  return out;
}

namespace {

// Maps each track of the compiled σ-condition automaton to the input column
// it reads: condition variables are named c<i> (ColumnVar) and the automaton
// tracks are in sorted-name order.
Result<std::vector<int>> ConditionColumnMap(const FormulaPtr& condition,
                                            int arity) {
  std::vector<int> map;
  for (const std::string& name :
       AutomataEvaluator::FreeVarOrder(condition)) {
    if (name.size() < 2 || name[0] != 'c') {
      return InvalidArgumentError("selection variable must be c<i>: " + name);
    }
    int index = 0;
    for (size_t i = 1; i < name.size(); ++i) {
      if (!isdigit(static_cast<unsigned char>(name[i]))) {
        return InvalidArgumentError("selection variable must be c<i>: " +
                                    name);
      }
      index = index * 10 + (name[i] - '0');
    }
    if (index < 0 || index >= arity) {
      return InvalidArgumentError("selection column out of range: " + name);
    }
    map.push_back(index);
  }
  return map;
}

}  // namespace

Result<Relation> AlgebraEvaluator::Eval(const RaPtr& expr) {
  if (!options_.enable_memo) return EvalUncached(*expr);
  auto it = memo_.find(expr.get());
  if (it != memo_.end()) {
    obs::Count(obs::kAlgebraMemoHits);
    return it->second;
  }
  Result<Relation> out = EvalUncached(*expr);
  if (out.ok()) memo_.emplace(expr.get(), *out);
  return out;
}

Result<Relation> AlgebraEvaluator::EvalUncached(const RaExpr& node) {
  obs::Span span(RaSpanName(node.kind));
  obs::Count(obs::kAlgebraNodesEvaluated);
  Result<Relation> out = EvalNode(node);
  if (span.active() && out.ok()) {
    span.Attr("tuples", static_cast<int64_t>(out->size()));
    span.Attr("arity", out->arity());
  }
  return out;
}

Result<Relation> AlgebraEvaluator::EvalNode(const RaExpr& node) {
  // Recursive children are fetched through Eval() for memoization.
  switch (node.kind) {
    case RaKind::kScan: {
      const Relation* rel = db_->Find(node.relation);
      if (rel == nullptr) {
        return InvalidArgumentError("unknown relation " + node.relation);
      }
      return *rel;
    }
    case RaKind::kEpsilon:
      return Relation::Create(1, {{""}});
    case RaKind::kSelect: {
      STRQ_ASSIGN_OR_RETURN(Relation input, Eval(node.left));
      if (MentionsDatabase(node.condition)) {
        return InvalidArgumentError(
            "σ condition must not refer to the database");
      }
      STRQ_ASSIGN_OR_RETURN(TrackAutomaton cond,
                            formula_engine_.Compile(node.condition));
      STRQ_ASSIGN_OR_RETURN(
          std::vector<int> cols,
          ConditionColumnMap(node.condition, input.arity()));
      std::vector<Tuple> out;
      const std::vector<Tuple>& tuples = input.tuples();
      int n = static_cast<int>(tuples.size());
      int threads = parallel_.EffectiveThreads();
      if (threads > 1 && n >= 64) {
        // Order-preserving parallel scan: the per-tuple membership tests
        // are independent (Contains is const; the condition automaton is
        // immutable), so partition the input and keep tuples by index.
        int chunks = std::min(threads, n);
        std::vector<char> keep(static_cast<size_t>(n), 0);
        std::vector<Status> errors(static_cast<size_t>(chunks),
                                   Status::Ok());
        ThreadPool::ParallelFor(parallel_.num_threads, chunks, [&](int c) {
          int lo = static_cast<int>(static_cast<int64_t>(n) * c / chunks);
          int hi =
              static_cast<int>(static_cast<int64_t>(n) * (c + 1) / chunks);
          for (int i = lo; i < hi; ++i) {
            std::vector<std::string> point;
            point.reserve(cols.size());
            for (int col : cols) point.push_back(tuples[i][col]);
            Result<bool> in = cond.Contains(point);
            if (!in.ok()) {
              errors[c] = in.status();
              return;
            }
            keep[i] = *in ? 1 : 0;
          }
        });
        for (const Status& s : errors) STRQ_RETURN_IF_ERROR(s);
        for (int i = 0; i < n; ++i) {
          if (keep[i]) out.push_back(tuples[i]);
        }
        return Relation::Create(input.arity(), std::move(out));
      }
      for (const Tuple& t : tuples) {
        std::vector<std::string> point;
        point.reserve(cols.size());
        for (int c : cols) point.push_back(t[c]);
        STRQ_ASSIGN_OR_RETURN(bool keep, cond.Contains(point));
        if (keep) out.push_back(t);
      }
      return Relation::Create(input.arity(), std::move(out));
    }
    case RaKind::kProject: {
      STRQ_ASSIGN_OR_RETURN(Relation input, Eval(node.left));
      std::vector<Tuple> out;
      for (const Tuple& t : input.tuples()) {
        Tuple projected;
        projected.reserve(node.columns.size());
        for (int c : node.columns) {
          if (c < 0 || c >= input.arity()) {
            return InvalidArgumentError("projection column out of range");
          }
          projected.push_back(t[c]);
        }
        out.push_back(std::move(projected));
      }
      return Relation::Create(static_cast<int>(node.columns.size()),
                              std::move(out));
    }
    case RaKind::kProduct: {
      STRQ_ASSIGN_OR_RETURN(Relation a, Eval(node.left));
      STRQ_ASSIGN_OR_RETURN(Relation b, Eval(node.right));
      STRQ_RETURN_IF_ERROR(CheckBudget(a.size() * b.size()));
      std::vector<Tuple> out;
      out.reserve(a.size() * b.size());
      for (const Tuple& ta : a.tuples()) {
        for (const Tuple& tb : b.tuples()) {
          Tuple t = ta;
          t.insert(t.end(), tb.begin(), tb.end());
          out.push_back(std::move(t));
        }
      }
      return Relation::Create(a.arity() + b.arity(), std::move(out));
    }
    case RaKind::kUnion: {
      STRQ_ASSIGN_OR_RETURN(Relation a, Eval(node.left));
      STRQ_ASSIGN_OR_RETURN(Relation b, Eval(node.right));
      if (a.arity() != b.arity()) {
        return InvalidArgumentError("union arity mismatch");
      }
      std::vector<Tuple> out = a.tuples();
      out.insert(out.end(), b.tuples().begin(), b.tuples().end());
      return Relation::Create(a.arity(), std::move(out));
    }
    case RaKind::kDifference: {
      STRQ_ASSIGN_OR_RETURN(Relation a, Eval(node.left));
      STRQ_ASSIGN_OR_RETURN(Relation b, Eval(node.right));
      if (a.arity() != b.arity()) {
        return InvalidArgumentError("difference arity mismatch");
      }
      std::vector<Tuple> out;
      for (const Tuple& t : a.tuples()) {
        if (!b.Contains(t)) out.push_back(t);
      }
      return Relation::Create(a.arity(), std::move(out));
    }
    case RaKind::kPrefix: {
      STRQ_ASSIGN_OR_RETURN(Relation input, Eval(node.left));
      std::vector<Tuple> out;
      for (const Tuple& t : input.tuples()) {
        if (node.column >= input.arity()) {
          return InvalidArgumentError("prefix column out of range");
        }
        const std::string& s = t[node.column];
        STRQ_RETURN_IF_ERROR(CheckBudget(out.size() + s.size() + 1));
        for (size_t len = 0; len <= s.size(); ++len) {
          Tuple extended = t;
          extended.push_back(s.substr(0, len));
          out.push_back(std::move(extended));
        }
      }
      return Relation::Create(input.arity() + 1, std::move(out));
    }
    case RaKind::kAddRight:
    case RaKind::kAddLeft:
    case RaKind::kTrimLeft: {
      STRQ_ASSIGN_OR_RETURN(Relation input, Eval(node.left));
      std::vector<Tuple> out;
      for (const Tuple& t : input.tuples()) {
        if (node.column >= input.arity()) {
          return InvalidArgumentError("column out of range");
        }
        const std::string& s = t[node.column];
        std::string value;
        if (node.kind == RaKind::kAddRight) {
          value = AppendLast(s, node.letter);
        } else if (node.kind == RaKind::kAddLeft) {
          value = PrependFirst(s, node.letter);
        } else {
          value = TrimLeading(s, node.letter);
        }
        Tuple extended = t;
        extended.push_back(std::move(value));
        out.push_back(std::move(extended));
      }
      return Relation::Create(input.arity() + 1, std::move(out));
    }
    case RaKind::kInsert: {
      STRQ_ASSIGN_OR_RETURN(Relation input, Eval(node.left));
      std::vector<Tuple> out;
      for (const Tuple& t : input.tuples()) {
        if (node.column >= input.arity() || node.column2 >= input.arity()) {
          return InvalidArgumentError("insert column out of range");
        }
        Tuple extended = t;
        extended.push_back(
            InsertAfterPrefix(t[node.column], t[node.column2], node.letter));
        out.push_back(std::move(extended));
      }
      return Relation::Create(input.arity() + 1, std::move(out));
    }
    case RaKind::kDown: {
      STRQ_ASSIGN_OR_RETURN(Relation input, Eval(node.left));
      std::string chars;
      for (int i = 0; i < db_->alphabet().size(); ++i) {
        chars.push_back(db_->alphabet().CharOf(static_cast<Symbol>(i)));
      }
      std::vector<Tuple> out;
      for (const Tuple& t : input.tuples()) {
        if (node.column >= input.arity()) {
          return InvalidArgumentError("down column out of range");
        }
        // Budget check before the exponential expansion.
        double count = 1;
        size_t cap = CurrentMaxAnswerTuples(options_.max_tuples);
        for (size_t i = 0; i < t[node.column].size(); ++i) {
          count = count * chars.size() + 1;
          if (out.size() + count > static_cast<double>(cap)) {
            return ResourceExhaustedError(
                "↓ expansion over budget (this exponentiality is inherent "
                "to RA(S_len), Section 6.2)");
          }
        }
        for (const std::string& s : AllStringsUpToLength(
                 chars, static_cast<int>(t[node.column].size()))) {
          Tuple extended = t;
          extended.push_back(s);
          out.push_back(std::move(extended));
        }
      }
      return Relation::Create(input.arity() + 1, std::move(out));
    }
  }
  return InternalError("unknown algebra node");
}

}  // namespace strq
