#include "eval/automata_eval.h"

#include <algorithm>
#include <chrono>
#include <unordered_set>
#include <utility>

#include "base/budget.h"
#include "base/thread_pool.h"
#include "obs/trace.h"

namespace strq {

namespace {

// Span name for the compile-time trace, one per AST node kind.
const char* CompileSpanName(FormulaKind kind) {
  switch (kind) {
    case FormulaKind::kTrue: return "compile.true";
    case FormulaKind::kFalse: return "compile.false";
    case FormulaKind::kPred: return "compile.pred";
    case FormulaKind::kRelation: return "compile.relation";
    case FormulaKind::kNot: return "compile.not";
    case FormulaKind::kAnd: return "compile.and";
    case FormulaKind::kOr: return "compile.or";
    case FormulaKind::kImplies: return "compile.implies";
    case FormulaKind::kIff: return "compile.iff";
    case FormulaKind::kExists: return "compile.exists";
    case FormulaKind::kForall: return "compile.forall";
  }
  return "compile";
}

// Source rendering of the node, truncated so deep traces stay readable.
std::string CompileSpanDetail(const FormulaPtr& f) {
  std::string text = ToString(f);
  constexpr size_t kMaxDetail = 72;
  if (text.size() > kMaxDetail) {
    text.resize(kMaxDetail);
    text += "...";
  }
  return text;
}

// The recursive compiler. Variable scoping: free variables of the whole
// query get ids 0..k-1 in sorted-name order (so answer-relation columns are
// deterministic); bound and auxiliary variables take fresh ids above that.
//
// Every automaton is obtained through the shared AtomCache: atoms and table
// tries come out interned against the cache's AutomatonStore, and all
// first-order operations below memoize in that store's computed table.
// A delta compile substitutes `contents` for the stored relation `name`;
// the trie is cached under "relovr:<tag>:<revision>" (see
// AutomataEvaluator::CompileWithRelationOverride).
struct RelationOverride {
  const std::string* name = nullptr;
  const Relation* contents = nullptr;
  const std::string* tag = nullptr;
};

class Compiler {
 public:
  Compiler(const Database* db, AtomCache* cache,
           ParallelOptions parallel = ParallelOptions{1},
           const std::unordered_set<const Formula*>* parallel_folds = nullptr,
           TrieProvider* provider = nullptr,
           RelationOverride override_rel = RelationOverride{})
      : db_(db),
        cache_(cache),
        parallel_(parallel),
        parallel_folds_(parallel_folds),
        provider_(provider),
        override_(override_rel) {}

  Result<TrackAutomaton> CompileQuery(const FormulaPtr& f) {
    return CompileQuery(f, AutomataEvaluator::FreeVarOrder(f));
  }

  // Compiles with an explicit free-variable → track-id assignment (ids
  // 0..k-1 in `free_vars` order). The planner can erase a variable from the
  // formula entirely (a conjunct folding to true, a dead quantifier), so
  // the evaluator passes the ORIGINAL query's variable order here and the
  // answer's columns stay put; missing tracks are cylindrified on top.
  Result<TrackAutomaton> CompileQuery(const FormulaPtr& f,
                                      const std::vector<std::string>& free_vars) {
    for (const std::string& name : free_vars) {
      scope_[name] = next_var_++;
    }
    return Compile(f);
  }

 private:
  const Alphabet& alphabet() const { return db_->alphabet(); }

  VarId Fresh() { return next_var_++; }

  std::string Rev() const { return std::to_string(db_->revision()); }

  // ---- Term resolution --------------------------------------------------

  // Resolves `t` to a variable id. Composite terms introduce a fresh
  // variable plus a defining graph atom appended to `defs`; the fresh ids
  // are appended to `to_project`.
  Result<VarId> ResolveTerm(const TermPtr& t,
                            std::vector<TrackAutomaton>* defs,
                            std::vector<VarId>* to_project) {
    switch (t->kind) {
      case TermKind::kVar: {
        auto it = scope_.find(t->var);
        if (it == scope_.end()) {
          return InternalError("unbound variable " + t->var);
        }
        return it->second;
      }
      case TermKind::kConst: {
        VarId v = Fresh();
        STRQ_ASSIGN_OR_RETURN(TrackAutomaton def, cache_->Const(t->text, v));
        defs->push_back(std::move(def));
        to_project->push_back(v);
        return v;
      }
      case TermKind::kAppend:
      case TermKind::kPrepend:
      case TermKind::kTrim: {
        STRQ_ASSIGN_OR_RETURN(VarId u, ResolveTerm(t->arg0, defs, to_project));
        VarId v = Fresh();
        Result<TrackAutomaton> def =
            t->kind == TermKind::kAppend
                ? cache_->AppendGraph(t->letter, u, v)
                : t->kind == TermKind::kPrepend
                      ? cache_->PrependGraph(t->letter, u, v)
                      : cache_->TrimLeadingGraph(t->letter, u, v);
        if (!def.ok()) return def.status();
        defs->push_back(*std::move(def));
        to_project->push_back(v);
        return v;
      }
      case TermKind::kInsert: {
        STRQ_ASSIGN_OR_RETURN(VarId a, ResolveTerm(t->arg0, defs, to_project));
        STRQ_ASSIGN_OR_RETURN(VarId b, ResolveTerm(t->arg1, defs, to_project));
        // insert_a(x, x) = x·a: alias the shared variable.
        if (a == b) {
          STRQ_ASSIGN_OR_RETURN(b, Alias(a, defs, to_project));
        }
        VarId v = Fresh();
        STRQ_ASSIGN_OR_RETURN(TrackAutomaton def,
                              cache_->InsertGraph(t->letter, a, b, v));
        defs->push_back(std::move(def));
        to_project->push_back(v);
        return v;
      }
      case TermKind::kLcp: {
        STRQ_ASSIGN_OR_RETURN(VarId a, ResolveTerm(t->arg0, defs, to_project));
        STRQ_ASSIGN_OR_RETURN(VarId b, ResolveTerm(t->arg1, defs, to_project));
        // LcpAtom needs three distinct variables; lcp(x, x) = x is handled
        // by aliasing through a fresh equal variable.
        if (a == b) {
          STRQ_ASSIGN_OR_RETURN(b, Alias(a, defs, to_project));
        }
        VarId v = Fresh();
        STRQ_ASSIGN_OR_RETURN(TrackAutomaton def, cache_->Lcp(a, b, v));
        defs->push_back(std::move(def));
        to_project->push_back(v);
        return v;
      }
      case TermKind::kConcat:
        return UnsupportedError(
            "concatenation is not an automatic relation; RC_concat queries "
            "cannot be compiled (Proposition 1) — see src/concat for the "
            "bounded semi-decision evaluator");
    }
    return InternalError("unknown term kind");
  }

  // Fresh variable constrained to equal `v` (for repeated-variable atoms).
  Result<VarId> Alias(VarId v, std::vector<TrackAutomaton>* defs,
                      std::vector<VarId>* to_project) {
    VarId fresh = Fresh();
    STRQ_ASSIGN_OR_RETURN(TrackAutomaton eq, cache_->Equal(v, fresh));
    defs->push_back(std::move(eq));
    to_project->push_back(fresh);
    return fresh;
  }

  // Resolves all argument terms, making the resulting ids pairwise distinct.
  Result<std::vector<VarId>> ResolveArgs(const std::vector<TermPtr>& args,
                                         std::vector<TrackAutomaton>* defs,
                                         std::vector<VarId>* to_project) {
    std::vector<VarId> ids;
    for (const TermPtr& t : args) {
      STRQ_ASSIGN_OR_RETURN(VarId v, ResolveTerm(t, defs, to_project));
      if (std::find(ids.begin(), ids.end(), v) != ids.end()) {
        STRQ_ASSIGN_OR_RETURN(v, Alias(v, defs, to_project));
      }
      ids.push_back(v);
    }
    return ids;
  }

  // Conjoins `atom` with its term-definition constraints and projects the
  // auxiliary variables away.
  Result<TrackAutomaton> FinishAtom(TrackAutomaton atom,
                                    std::vector<TrackAutomaton> defs,
                                    const std::vector<VarId>& to_project) {
    for (TrackAutomaton& def : defs) {
      STRQ_ASSIGN_OR_RETURN(atom, TrackAutomaton::Intersect(atom, def));
    }
    for (VarId v : to_project) {
      STRQ_ASSIGN_OR_RETURN(atom, atom.Project(v));
    }
    return atom;
  }

  // ---- Atoms -------------------------------------------------------------

  Result<TrackAutomaton> CompilePred(const Formula& f) {
    std::vector<TrackAutomaton> defs;
    std::vector<VarId> aux;
    STRQ_ASSIGN_OR_RETURN(std::vector<VarId> ids,
                          ResolveArgs(f.args, &defs, &aux));
    Result<TrackAutomaton> atom = InternalError("unset");
    switch (f.pred) {
      case PredKind::kEq:
        atom = cache_->Equal(ids[0], ids[1]);
        break;
      case PredKind::kPrefix:
        atom = cache_->Prefix(ids[0], ids[1]);
        break;
      case PredKind::kStrictPrefix:
        atom = cache_->StrictPrefix(ids[0], ids[1]);
        break;
      case PredKind::kOneStep:
        atom = cache_->OneStep(ids[0], ids[1]);
        break;
      case PredKind::kLast:
        atom = cache_->LastSymbol(f.letter, ids[0]);
        break;
      case PredKind::kEqLen:
        atom = cache_->EqLen(ids[0], ids[1]);
        break;
      case PredKind::kLeqLen:
        atom = cache_->LeqLen(ids[0], ids[1]);
        break;
      case PredKind::kLexLeq:
        atom = cache_->LexLeq(ids[0], ids[1]);
        break;
      case PredKind::kAdom:
        atom = AdomAutomaton(ids[0]);
        break;
      case PredKind::kLike:
      case PredKind::kMember: {
        STRQ_ASSIGN_OR_RETURN(DfaRef lang,
                              cache_->CompiledPattern(f.pattern, f.syntax));
        atom = cache_->Member(lang, ids[0]);
        break;
      }
      case PredKind::kSuffixIn: {
        STRQ_ASSIGN_OR_RETURN(DfaRef lang,
                              cache_->CompiledPattern(f.pattern, f.syntax));
        atom = cache_->SuffixIn(lang, ids[0], ids[1]);
        break;
      }
      case PredKind::kNear: {
        STRQ_ASSIGN_OR_RETURN(DfaRef lang,
                              cache_->CompiledNear(f.pattern, f.distance));
        atom = cache_->Member(lang, ids[0]);
        break;
      }
    }
    if (!atom.ok()) return atom.status();
    return FinishAtom(*std::move(atom), std::move(defs), aux);
  }

  Result<TrackAutomaton> CompileRelation(const Formula& f) {
    bool overridden =
        override_.name != nullptr && f.relation == *override_.name;
    const Relation* rel =
        overridden ? override_.contents : db_->Find(f.relation);
    if (rel == nullptr) {
      return InvalidArgumentError("unknown relation " + f.relation);
    }
    if (static_cast<int>(f.args.size()) != rel->arity()) {
      return InvalidArgumentError("relation " + f.relation +
                                  " arity mismatch");
    }
    std::vector<TrackAutomaton> defs;
    std::vector<VarId> aux;
    STRQ_ASSIGN_OR_RETURN(std::vector<VarId> ids,
                          ResolveArgs(f.args, &defs, &aux));
    if (overridden) {
      STRQ_ASSIGN_OR_RETURN(
          TrackAutomaton atom,
          cache_->TableTrie("relovr:" + *override_.tag + ":" + Rev(), ids,
                            [rel] { return rel->tuples(); }));
      return FinishAtom(std::move(atom), std::move(defs), aux);
    }
    if (provider_ != nullptr) {
      STRQ_ASSIGN_OR_RETURN(TrackAutomaton atom,
                            provider_->RelationTrie(*db_, f.relation, ids));
      return FinishAtom(std::move(atom), std::move(defs), aux);
    }
    // The trie is cached per (relation, database revision); the supplier
    // only runs on the first compilation of this relation's contents.
    STRQ_ASSIGN_OR_RETURN(
        TrackAutomaton atom,
        cache_->TableTrie("rel:" + f.relation + ":" + Rev(), ids,
                          [rel] { return rel->tuples(); }));
    return FinishAtom(std::move(atom), std::move(defs), aux);
  }

  Result<TrackAutomaton> AdomAutomaton(VarId v) {
    if (provider_ != nullptr) return provider_->AdomTrie(*db_, v);
    const Database* db = db_;
    return cache_->TableTrie("adom:" + Rev(), {v}, [db] {
      std::vector<std::vector<std::string>> tuples;
      for (const std::string& s : db->ActiveDomain()) tuples.push_back({s});
      return tuples;
    });
  }

  // ---- Quantifier ranges --------------------------------------------------

  // The range constraint of a restricted quantifier, desugared to automata
  // (Sections 5.1 and 5.2): the paper's ∃x ∈ dom / ∃x ≼ dom / ∃|x| ≤ adom.
  Result<TrackAutomaton> RangeConstraint(VarId v, QuantRange range,
                                         const std::vector<VarId>& params) {
    switch (range) {
      case QuantRange::kAll:
        return InternalError("kAll has no constraint");
      case QuantRange::kAdom:
        return AdomAutomaton(v);
      case QuantRange::kPrefixDom: {
        // x ≼ some adom string, or x ≼ some parameter.
        const Database* db = db_;
        Result<TrackAutomaton> closure =
            provider_ != nullptr
                ? provider_->PrefixDomTrie(*db_, v)
                : cache_->TableTrie("prefixdom:" + Rev(), {v}, [db] {
                    std::vector<std::vector<std::string>> tuples;
                    for (const std::string& s : PrefixClosureOfAdom(db)) {
                      tuples.push_back({s});
                    }
                    return tuples;
                  });
        STRQ_ASSIGN_OR_RETURN(TrackAutomaton acc, std::move(closure));
        for (VarId z : params) {
          STRQ_ASSIGN_OR_RETURN(TrackAutomaton pre, cache_->Prefix(v, z));
          STRQ_ASSIGN_OR_RETURN(acc, TrackAutomaton::Union(acc, pre));
        }
        return acc;
      }
      case QuantRange::kLenDom: {
        STRQ_ASSIGN_OR_RETURN(
            TrackAutomaton acc,
            cache_->MaxLen(static_cast<int>(db_->MaxAdomLength()), v));
        for (VarId z : params) {
          STRQ_ASSIGN_OR_RETURN(TrackAutomaton leq, cache_->LeqLen(v, z));
          STRQ_ASSIGN_OR_RETURN(acc, TrackAutomaton::Union(acc, leq));
        }
        return acc;
      }
    }
    return InternalError("unknown range");
  }

  static std::vector<std::string> PrefixClosureOfAdom(const Database* db) {
    std::vector<std::string> adom = db->ActiveDomain();
    std::vector<std::string> out;
    for (const std::string& s : adom) {
      for (size_t len = 0; len <= s.size(); ++len) {
        out.push_back(s.substr(0, len));
      }
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
  }

  // ---- Formulas -----------------------------------------------------------

  Result<TrackAutomaton> CompileQuantifier(const Formula& f) {
    bool is_forall = f.kind == FormulaKind::kForall;
    // ∀x∈R φ ≡ ¬∃x∈R ¬φ.
    FormulaPtr body = is_forall ? FNot(f.left) : f.left;

    // Parameters (free variables of the quantified formula other than x),
    // resolved in the *outer* scope: they bound the restricted ranges.
    std::vector<VarId> params;
    if (f.range == QuantRange::kPrefixDom || f.range == QuantRange::kLenDom) {
      std::set<std::string> fv = FreeVars(f.left);
      fv.erase(f.var);
      for (const std::string& name : fv) {
        auto it = scope_.find(name);
        if (it != scope_.end()) params.push_back(it->second);
      }
    }

    // Bind the quantified variable to a fresh id (shadowing).
    auto saved = scope_.find(f.var);
    std::optional<VarId> shadowed;
    if (saved != scope_.end()) shadowed = saved->second;
    VarId v = Fresh();
    scope_[f.var] = v;
    Result<TrackAutomaton> body_rel = Compile(body);
    if (shadowed.has_value()) {
      scope_[f.var] = *shadowed;
    } else {
      scope_.erase(f.var);
    }
    if (!body_rel.ok()) return body_rel.status();

    TrackAutomaton rel = *std::move(body_rel);
    if (f.range != QuantRange::kAll) {
      STRQ_ASSIGN_OR_RETURN(TrackAutomaton constraint,
                            RangeConstraint(v, f.range, params));
      STRQ_ASSIGN_OR_RETURN(rel, TrackAutomaton::Intersect(rel, constraint));
    }
    // If the variable does not occur, ∃x φ ≡ φ (the domain is non-empty and
    // restricted ranges always contain ε).
    const std::vector<VarId>& vars = rel.vars();
    if (std::find(vars.begin(), vars.end(), v) != vars.end()) {
      STRQ_ASSIGN_OR_RETURN(rel, rel.Project(v));
    }
    if (is_forall) {
      STRQ_ASSIGN_OR_RETURN(rel, rel.Complemented());
    }
    return rel;
  }

  // One span per AST node: name by kind, detail = the subformula, attrs =
  // output automaton size. The nesting mirrors the recursion, so the span
  // tree IS the compile plan (EXPLAIN ANALYZE over it).
  Result<TrackAutomaton> Compile(const FormulaPtr& f) {
    obs::Span span(CompileSpanName(f->kind));
    bool watching = span.active();
    AutomatonStore::Stats store_before;
    AtomCache::Stats cache_before;
    int64_t explored_before = 0;
    int64_t allocated_before = 0;
    if (watching) {
      span.set_detail(CompileSpanDetail(f));
      store_before = cache_->store().stats();
      cache_before = cache_->stats();
      explored_before = obs::MetricsRegistry::Global().Get(
          obs::kDfaProductStatesExplored);
      allocated_before = obs::MetricsRegistry::Global().Get(
          obs::kDfaProductStatesAllocated);
    }
    Result<TrackAutomaton> out = CompileNode(f);
    if (watching && out.ok()) {
      span.Attr("states", out->NumStates());
      span.Attr("arity", out->arity());
      // Alphabet compression for this subtree's result: distinct column
      // behaviors vs the full convolution alphabet, and the bytes the
      // condensed table holds vs its dense letter-indexed equivalent.
      span.Attr("classes", out->NumClasses());
      span.Attr("table_bytes_condensed", out->TableBytesCondensed());
      span.Attr("table_bytes_dense_equiv", out->TableBytesDenseEquiv());
      // Reachable-only kernel accounting for this subtree: pairs the
      // worklists materialized vs the full eager pair space they avoided.
      span.Attr("states_explored",
                obs::MetricsRegistry::Global().Get(
                    obs::kDfaProductStatesExplored) -
                    explored_before);
      span.Attr("states_allocated",
                obs::MetricsRegistry::Global().Get(
                    obs::kDfaProductStatesAllocated) -
                    allocated_before);
      // A subtree served entirely by the memoization substrate returns
      // near-instantly; mark it so estimated-vs-actual comparisons in the
      // plan phase don't read its span time as real compile cost.
      AutomatonStore::Stats store_after = cache_->store().stats();
      AtomCache::Stats cache_after = cache_->stats();
      bool no_misses =
          store_after.unique_misses == store_before.unique_misses &&
          store_after.op_misses == store_before.op_misses &&
          cache_after.misses == cache_before.misses &&
          cache_after.pattern_misses == cache_before.pattern_misses;
      bool some_hits = store_after.op_hits > store_before.op_hits ||
                       cache_after.hits > cache_before.hits ||
                       cache_after.pattern_hits > cache_before.pattern_hits;
      if (no_misses && some_hits) span.Attr("cached", 1);
    }
    return out;
  }

  // The fan-out for a planner-annotated And/Or fold: flattens the binary
  // spine Render produced from one n-ary plan node back into its child
  // list, compiles the children across the pool (each on a cloned Compiler
  // — the fresh variable ids a child burns are projected away before it
  // returns, so clones starting from the same next_var_ are safe), then
  // folds the results in planner order. With one effective thread
  // ParallelFor degenerates to a serial loop over the same flattened parts,
  // so answers, canonical store ids, and span-tree shape are identical at
  // every thread count. Worker spans stitch into the caller's trace via the
  // TraceContext the pool propagates — tracing no longer forces a serial
  // fallback. Returns nullopt when the node is not annotated.
  std::optional<Result<TrackAutomaton>> CompileSpineParallel(
      const FormulaPtr& f) {
    if (parallel_folds_ == nullptr) {
      return std::nullopt;
    }
    if (parallel_folds_->count(f.get()) == 0) return std::nullopt;
    bool is_and = f->kind == FormulaKind::kAnd;
    std::vector<FormulaPtr> parts;
    FormulaPtr cur = f;
    while (cur->kind == f->kind && parallel_folds_->count(cur.get()) > 0) {
      parts.push_back(cur->right);
      cur = cur->left;
    }
    parts.push_back(cur);
    std::reverse(parts.begin(), parts.end());
    if (parts.size() < 2) return std::nullopt;
    std::vector<Result<TrackAutomaton>> results;
    results.reserve(parts.size());
    for (size_t i = 0; i < parts.size(); ++i) {
      results.emplace_back(InternalError("subplan not compiled"));
    }
    ThreadPool::ParallelFor(
        parallel_.num_threads, static_cast<int>(parts.size()), [&](int i) {
          Compiler clone(*this);
          results[static_cast<size_t>(i)] =
              clone.Compile(parts[static_cast<size_t>(i)]);
        });
    Result<TrackAutomaton> acc = std::move(results[0]);
    for (size_t i = 1; i < parts.size() && acc.ok(); ++i) {
      if (!results[i].ok()) return std::move(results[i]);
      acc = is_and ? TrackAutomaton::Intersect(*acc, *results[i])
                   : TrackAutomaton::Union(*acc, *results[i]);
    }
    return acc;
  }

  Result<TrackAutomaton> CompileNode(const FormulaPtr& f) {
    switch (f->kind) {
      case FormulaKind::kTrue:
        return TrackAutomaton::Truth(cache_->store(), alphabet(), true);
      case FormulaKind::kFalse:
        return TrackAutomaton::Truth(cache_->store(), alphabet(), false);
      case FormulaKind::kPred:
        return CompilePred(*f);
      case FormulaKind::kRelation:
        return CompileRelation(*f);
      case FormulaKind::kNot: {
        STRQ_ASSIGN_OR_RETURN(TrackAutomaton a, Compile(f->left));
        return a.Complemented();
      }
      case FormulaKind::kAnd: {
        if (std::optional<Result<TrackAutomaton>> parallel =
                CompileSpineParallel(f)) {
          return *std::move(parallel);
        }
        STRQ_ASSIGN_OR_RETURN(TrackAutomaton a, Compile(f->left));
        STRQ_ASSIGN_OR_RETURN(TrackAutomaton b, Compile(f->right));
        return TrackAutomaton::Intersect(a, b);
      }
      case FormulaKind::kOr: {
        if (std::optional<Result<TrackAutomaton>> parallel =
                CompileSpineParallel(f)) {
          return *std::move(parallel);
        }
        STRQ_ASSIGN_OR_RETURN(TrackAutomaton a, Compile(f->left));
        STRQ_ASSIGN_OR_RETURN(TrackAutomaton b, Compile(f->right));
        return TrackAutomaton::Union(a, b);
      }
      case FormulaKind::kImplies:
        return Compile(FOr(FNot(f->left), f->right));
      case FormulaKind::kIff:
        return Compile(
            FOr(FAnd(f->left, f->right), FAnd(FNot(f->left), FNot(f->right))));
      case FormulaKind::kExists:
      case FormulaKind::kForall:
        return CompileQuantifier(*f);
    }
    return InternalError("unknown formula kind");
  }

  const Database* db_;
  AtomCache* cache_;
  ParallelOptions parallel_;
  const std::unordered_set<const Formula*>* parallel_folds_;
  TrieProvider* provider_ = nullptr;
  RelationOverride override_;
  std::map<std::string, VarId> scope_;
  int next_var_ = 0;
};

}  // namespace

AutomataEvaluator::AutomataEvaluator(const Database* db)
    : AutomataEvaluator(db, nullptr, nullptr) {}

AutomataEvaluator::AutomataEvaluator(const Database* db,
                                     std::shared_ptr<AtomCache> cache)
    : AutomataEvaluator(db, std::move(cache), nullptr) {}

AutomataEvaluator::AutomataEvaluator(const Database* db,
                                     std::shared_ptr<AtomCache> cache,
                                     std::shared_ptr<plan::Planner> planner)
    : db_(db), cache_(std::move(cache)), planner_(std::move(planner)) {
  if (cache_ == nullptr || !(cache_->alphabet() == db_->alphabet())) {
    cache_ = std::make_shared<AtomCache>(db_->alphabet());
  }
  if (planner_ == nullptr) planner_ = std::make_shared<plan::Planner>();
}

void AutomataEvaluator::set_planner(std::shared_ptr<plan::Planner> planner) {
  planner_ = std::move(planner);
  if (planner_ == nullptr) planner_ = std::make_shared<plan::Planner>();
}

std::vector<std::string> AutomataEvaluator::FreeVarOrder(const FormulaPtr& f) {
  std::set<std::string> fv = FreeVars(f);
  return std::vector<std::string>(fv.begin(), fv.end());
}

namespace {

// Elapsed nanoseconds since `since`, for the per-query latency histograms.
int64_t LatencyNsSince(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - since)
      .count();
}

}  // namespace

Result<TrackAutomaton> AutomataEvaluator::Compile(const FormulaPtr& f) {
  auto compile_start = std::chrono::steady_clock::now();
  // A request that arrives with its deadline already spent fails before any
  // planning or compilation work (kernels poll the same deadline mid-flight).
  STRQ_RETURN_IF_ERROR(CheckDeadline());
  // Track ids come from the ORIGINAL formula's free variables: the planner
  // may rewrite a variable out of the formula entirely, and the answer
  // relation's columns must not shift when it does.
  std::vector<std::string> order = FreeVarOrder(f);
  FormulaPtr to_compile = f;
  plan::PlannedQuery planned = planner_->Plan(f, db_, cache_.get());
  to_compile = planned.formula;
  // Semantic guard: free variables unconstrained by the formula would make
  // every track valid; that is handled naturally (FullRelation semantics)
  // because absent tracks are cylindrified on demand by callers. Here the
  // answer automaton is over exactly the tracks the formula constrains; for
  // evaluation we cylindrify to all free variables below.
  Compiler compiler(db_, cache_.get(), parallel_,
                    planned.parallel_folds.get(), trie_provider_.get());
  STRQ_ASSIGN_OR_RETURN(TrackAutomaton rel,
                        compiler.CompileQuery(to_compile, order));
  // Ensure every free variable has a track (x may not occur in any atom).
  std::vector<VarId> want;
  for (size_t i = 0; i < order.size(); ++i) {
    want.push_back(static_cast<VarId>(i));
  }
  // rel.vars() ⊆ want by construction (aux vars are projected; bound vars
  // are projected; free vars got ids 0..k-1).
  if (rel.vars() != want) {
    STRQ_ASSIGN_OR_RETURN(rel, rel.Cylindrified(want));
  }
  // Close the planner's feedback loop: estimated-vs-actual drift shows up
  // in explain output and the plan.actual_states counter.
  planner_->RecordActual(f, db_, rel.NumStates());
  obs::Observe(obs::kHistCompileNs, LatencyNsSince(compile_start));
  return rel;
}

namespace {

// Splits the planned formula at its boolean skeleton: connectives become
// skeleton nodes, the first non-connective on every path (atom, relation,
// quantifier) becomes a leaf to be compiled as its own component automaton.
int BuildSkeleton(const FormulaPtr& f, lazy::Skeleton* sk,
                  std::vector<FormulaPtr>* leaves) {
  lazy::Skeleton::Node node;
  switch (f->kind) {
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
      node.kind = lazy::Skeleton::Kind::kConst;
      node.value = f->kind == FormulaKind::kTrue;
      break;
    case FormulaKind::kNot:
      node.kind = lazy::Skeleton::Kind::kNot;
      node.left = BuildSkeleton(f->left, sk, leaves);
      break;
    case FormulaKind::kAnd:
    case FormulaKind::kOr:
    case FormulaKind::kImplies:
    case FormulaKind::kIff:
      node.kind = f->kind == FormulaKind::kAnd ? lazy::Skeleton::Kind::kAnd
                  : f->kind == FormulaKind::kOr
                      ? lazy::Skeleton::Kind::kOr
                      : f->kind == FormulaKind::kImplies
                            ? lazy::Skeleton::Kind::kImplies
                            : lazy::Skeleton::Kind::kIff;
      node.left = BuildSkeleton(f->left, sk, leaves);
      node.right = BuildSkeleton(f->right, sk, leaves);
      break;
    case FormulaKind::kPred:
    case FormulaKind::kRelation:
    case FormulaKind::kExists:
    case FormulaKind::kForall:
      node.kind = lazy::Skeleton::Kind::kLeaf;
      node.leaf = static_cast<int>(leaves->size());
      leaves->push_back(f);
      break;
  }
  sk->nodes.push_back(node);
  return static_cast<int>(sk->nodes.size()) - 1;
}

}  // namespace

Result<lazy::LazyProduct> AutomataEvaluator::CompileLazy(const FormulaPtr& f) {
  auto compile_start = std::chrono::steady_clock::now();
  STRQ_RETURN_IF_ERROR(CheckDeadline());
  std::vector<std::string> order = FreeVarOrder(f);
  if (order.empty()) {
    return InvalidArgumentError(
        "lazy compilation needs at least one free variable; evaluate "
        "sentences directly");
  }
  plan::PlannedQuery planned = planner_->Plan(f, db_, cache_.get());
  lazy::Skeleton sk;
  std::vector<FormulaPtr> leaf_formulas;
  sk.root = BuildSkeleton(planned.formula, &sk, &leaf_formulas);
  std::vector<VarId> want;
  for (size_t i = 0; i < order.size(); ++i) {
    want.push_back(static_cast<VarId>(i));
  }
  // Leaves compile exactly as Compile() would compile them as standalone
  // queries with the original variable order, so every leaf automaton (and
  // its canonical store id) is shared with eager compilations of the same
  // subformulas. Only the product over them is deferred.
  std::vector<DfaRef> leaves;
  for (const FormulaPtr& leaf : leaf_formulas) {
    Compiler compiler(db_, cache_.get(), parallel_,
                      planned.parallel_folds.get(), trie_provider_.get());
    STRQ_ASSIGN_OR_RETURN(TrackAutomaton rel,
                          compiler.CompileQuery(leaf, order));
    if (rel.vars() != want) {
      STRQ_ASSIGN_OR_RETURN(rel, rel.Cylindrified(want));
    }
    leaves.push_back(rel.dfa_ref());
  }
  STRQ_ASSIGN_OR_RETURN(
      TrackAutomaton full,
      TrackAutomaton::FullRelation(cache_->store(), db_->alphabet(), want));
  obs::Observe(obs::kHistCompileNs, LatencyNsSince(compile_start));
  return lazy::LazyProduct::Create(db_->alphabet(), full.conv(),
                                   full.dfa_ref(), std::move(leaves),
                                   std::move(sk));
}

Result<bool> AutomataEvaluator::Contains(const FormulaPtr& f,
                                         const std::vector<std::string>& tuple) {
  std::vector<std::string> order = FreeVarOrder(f);
  if (tuple.size() != order.size()) {
    return InvalidArgumentError("tuple arity does not match free variables");
  }
  if (order.empty()) return EvaluateSentence(f);
  plan::PlannedQuery planned = planner_->Plan(f, db_, cache_.get());
  if (!planner_->AdviseLazy(f, planned.estimated_states)) {
    STRQ_ASSIGN_OR_RETURN(TrackAutomaton rel, Compile(f));
    return rel.Contains(tuple);
  }
  STRQ_ASSIGN_OR_RETURN(lazy::LazyProduct product, CompileLazy(f));
  return product.Contains(tuple);
}

Result<std::optional<std::vector<std::string>>>
AutomataEvaluator::ExistsWitness(const FormulaPtr& f) {
  std::vector<std::string> order = FreeVarOrder(f);
  if (order.empty()) {
    STRQ_ASSIGN_OR_RETURN(bool truth, EvaluateSentence(f));
    if (truth) {
      return std::optional<std::vector<std::string>>(
          std::vector<std::string>{});
    }
    return std::optional<std::vector<std::string>>();
  }
  plan::PlannedQuery planned = planner_->Plan(f, db_, cache_.get());
  if (!planner_->AdviseLazy(f, planned.estimated_states)) {
    STRQ_ASSIGN_OR_RETURN(TrackAutomaton rel, Compile(f));
    // Shortlex enumeration's first tuple is a shortest witness; a nonempty
    // language accepts some word of length < NumStates().
    std::vector<std::vector<std::string>> tuples =
        rel.EnumerateTuples(rel.NumStates(), 1);
    if (tuples.empty()) return std::optional<std::vector<std::string>>();
    return std::optional<std::vector<std::string>>(std::move(tuples[0]));
  }
  STRQ_ASSIGN_OR_RETURN(lazy::LazyProduct product, CompileLazy(f));
  return product.ShortestWitness();
}

Result<std::vector<std::vector<std::string>>> AutomataEvaluator::TopK(
    const FormulaPtr& f, size_t k, int max_len) {
  std::vector<std::string> order = FreeVarOrder(f);
  if (order.empty()) {
    STRQ_ASSIGN_OR_RETURN(bool truth, EvaluateSentence(f));
    std::vector<std::vector<std::string>> out;
    if (truth && k > 0) out.push_back({});
    return out;
  }
  plan::PlannedQuery planned = planner_->Plan(f, db_, cache_.get());
  if (!planner_->AdviseLazy(f, planned.estimated_states)) {
    STRQ_ASSIGN_OR_RETURN(TrackAutomaton rel, Compile(f));
    return rel.EnumerateTuples(max_len, CurrentMaxAnswerTuples(k));
  }
  STRQ_ASSIGN_OR_RETURN(lazy::LazyProduct product, CompileLazy(f));
  return product.TopK(k, max_len);
}

Result<TrackAutomaton> AutomataEvaluator::CompileWithRelationOverride(
    const FormulaPtr& f, const std::string& relation, const Relation& contents,
    const std::string& cache_tag) {
  STRQ_RETURN_IF_ERROR(CheckDeadline());
  std::vector<std::string> order = FreeVarOrder(f);
  // Plans are semantics-preserving rewrites, so the full-contents plan is
  // valid for the substituted contents too (and reusing it keeps the plan
  // cache warm instead of polluting it with delta-sized variants).
  plan::PlannedQuery planned = planner_->Plan(f, db_, cache_.get());
  RelationOverride override_rel;
  override_rel.name = &relation;
  override_rel.contents = &contents;
  override_rel.tag = &cache_tag;
  Compiler compiler(db_, cache_.get(), parallel_,
                    planned.parallel_folds.get(), trie_provider_.get(),
                    override_rel);
  STRQ_ASSIGN_OR_RETURN(TrackAutomaton rel,
                        compiler.CompileQuery(planned.formula, order));
  std::vector<VarId> want;
  for (size_t i = 0; i < order.size(); ++i) {
    want.push_back(static_cast<VarId>(i));
  }
  if (rel.vars() != want) {
    STRQ_ASSIGN_OR_RETURN(rel, rel.Cylindrified(want));
  }
  return rel;
}

Result<Relation> AutomataEvaluator::Evaluate(const FormulaPtr& f,
                                             size_t max_tuples) {
  auto start = std::chrono::steady_clock::now();
  STRQ_ASSIGN_OR_RETURN(TrackAutomaton rel, Compile(f));
  obs::Span span("eval.enumerate");
  span.Attr("answer_states", rel.NumStates());
  // The request budget's max_answer_tuples can only tighten the caller's
  // materialization bound, never widen it.
  Result<std::vector<std::vector<std::string>>> tuples =
      rel.AllTuples(CurrentMaxAnswerTuples(max_tuples));
  if (!tuples.ok()) return tuples.status();
  span.Attr("tuples", static_cast<int64_t>(tuples->size()));
  obs::Count(obs::kEvalTuplesEnumerated,
             static_cast<int64_t>(tuples->size()));
  obs::Observe(obs::kHistQueryLatencyNs, LatencyNsSince(start));
  return Relation::Create(rel.arity(), *std::move(tuples));
}

Result<bool> AutomataEvaluator::EvaluateSentence(const FormulaPtr& f) {
  if (!FreeVars(f).empty()) {
    return InvalidArgumentError("sentence expected, found free variables");
  }
  STRQ_ASSIGN_OR_RETURN(TrackAutomaton rel, Compile(f));
  return rel.TruthValue();
}

Result<bool> AutomataEvaluator::IsSafeOnDatabase(const FormulaPtr& f) {
  STRQ_ASSIGN_OR_RETURN(TrackAutomaton rel, Compile(f));
  return rel.IsFinite();
}

Result<Dfa> AutomataEvaluator::CompiledPattern(const std::string& pattern,
                                               PatternSyntax syntax) {
  STRQ_ASSIGN_OR_RETURN(DfaRef lang, cache_->CompiledPattern(pattern, syntax));
  return *lang;
}

}  // namespace strq
