#ifndef STRQ_EVAL_RESTRICTED_EVAL_H_
#define STRQ_EVAL_RESTRICTED_EVAL_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "base/status.h"
#include "base/thread_pool.h"
#include "logic/ast.h"
#include "mta/atom_cache.h"
#include "plan/planner.h"
#include "relational/database.h"
#include "relational/domain_trie.h"

namespace strq {

// Pluggable supplier of incrementally-maintained active-domain views for
// Engine B. The evaluator materializes adom(D) (and its prefix closure, for
// kPrefixDom candidate sets) on every construction; an implementation —
// src/incr maintains both under tuple inserts/deletes — answers from its
// maintained state instead. Returning nullopt for a revision the provider
// has no view of makes the evaluator fall back to recomputing from the
// database; a non-null answer must equal that recomputation exactly
// (sorted, deduplicated, ε included in the closure of a non-empty adom).
class DomainProvider {
 public:
  virtual ~DomainProvider() = default;
  virtual std::optional<std::vector<std::string>> ActiveDomainAt(
      int64_t revision) const = 0;
  virtual std::optional<std::vector<std::string>> PrefixClosureAt(
      int64_t revision) const = 0;
  // Trie-indexed views of the same two sets, for DFA-guided candidate
  // pruning. Null means "no maintained trie for this revision" — the
  // evaluator then builds one locally from the flat view. A non-null trie
  // must store exactly the strings the flat accessor returns for the same
  // revision.
  virtual std::shared_ptr<const DomainTrie> AdomTrieAt(int64_t) const {
    return nullptr;
  }
  virtual std::shared_ptr<const DomainTrie> PrefixTrieAt(int64_t) const {
    return nullptr;
  }
};

// Engine B: direct evaluation of *restricted-quantifier* formulas by
// enumeration, with no automata. This is the evaluation strategy behind the
// paper's collapse results:
//
//   * Proposition 2 / Theorem 1: over S (and S_left, S_reg — Theorem 6),
//     quantifiers can be restricted to prefixes of the active domain and the
//     parameters (∃x ≼ dom). Enumerating that set gives polynomial data
//     complexity — the engine-level counterpart of Corollary 2's AC⁰ bound.
//   * Theorem 2: over S_len, quantifiers can be length-restricted
//     (∃|x| ≤ adom). The candidate set Σ^{≤maxlen} is exponential in the
//     longest database string — matching Theorem 2's PH data complexity.
//
// Plain ∃x/∀x quantifiers are rejected: collapse the query first (the tests
// cross-check engine A's natural semantics against this engine on
// already-restricted formulas, which is exactly the collapse equivalence).
class RestrictedEvaluator {
 public:
  struct Options {
    // Ceiling on the number of candidate strings a single length-restricted
    // quantifier may enumerate (|Σ|^maxlen grows fast).
    size_t max_len_candidates = 2000000;
    // If set, plain ∃x/∀x quantifiers enumerate Σ^{≤bound} instead of being
    // rejected. This is bounded-universe *approximate* semantics — the
    // semi-decision device used for RC_concat (src/concat), where exact
    // evaluation is impossible (Proposition 1). Leave unset for the tame
    // calculi and use the automata engine there instead.
    std::optional<int> all_quantifier_bound;
  };

  explicit RestrictedEvaluator(const Database* db) : RestrictedEvaluator(db, Options()) {}
  RestrictedEvaluator(const Database* db, Options options);
  // Shares `cache` with other engines: LIKE/regex/SIMILAR patterns compiled
  // here land in (and are served from) the same AtomCache the automata and
  // algebra engines use. A null cache or an alphabet mismatch falls back to
  // a fresh private cache.
  RestrictedEvaluator(const Database* db, Options options,
                      std::shared_ptr<AtomCache> cache);

  // The pattern/atom cache this evaluator uses; never null.
  const std::shared_ptr<AtomCache>& atom_cache() const { return cache_; }

  // Every evaluation routes the formula through this planner first (the
  // rewrites are sound for the enumeration semantics too — the rule gates
  // preserve the parameter sets of restricted ranges, which is exactly what
  // Candidates() computes). Never null; pass null to install a fresh
  // default. Share one planner with engine A to share its plan cache.
  void set_planner(std::shared_ptr<plan::Planner> planner);
  const std::shared_ptr<plan::Planner>& planner() const { return planner_; }

  // Parallel candidate enumeration: EvaluateOnCandidates partitions the
  // candidates^k assignment space across threads (each partition gets its
  // own Evaluator; the shared AtomCache is thread-safe). Tuple order and
  // answers are identical to the serial run — partitions are concatenated
  // in order. num_threads = 1 restores the serial loop.
  void set_parallel_options(ParallelOptions options) { parallel_ = options; }
  const ParallelOptions& parallel_options() const { return parallel_; }

  // Serves adom(D)/prefix(adom(D)) from an incrementally-maintained view
  // (keyed on the database revision) instead of rescanning every relation.
  // Null restores the default recomputation.
  void set_domain_provider(std::shared_ptr<DomainProvider> provider) {
    domain_provider_ = std::move(provider);
  }

  // Truth of a formula under the given assignment of its free variables.
  Result<bool> Holds(const FormulaPtr& f,
                     const std::map<std::string, std::string>& assignment);

  // Truth of a sentence.
  Result<bool> EvaluateSentence(const FormulaPtr& f);

  // Evaluates an open formula over explicit per-variable candidate sets:
  // the output is {t̄ ∈ candidates : D ⊨ φ(t̄)} with columns in sorted
  // free-variable name order. This is the range-restricted semantics
  // (γ(adom) ∩ φ(D)) of Section 6.1.
  Result<Relation> EvaluateOnCandidates(
      const FormulaPtr& f, const std::vector<std::string>& candidates);

  // Early-exit modes over the same assignment space. Both enumerate the
  // serial odometer order, so the answers are a prefix of (respectively an
  // element of) EvaluateOnCandidates' tuple order, and both stop the moment
  // they have enough — no further assignments are evaluated.
  Result<std::optional<Tuple>> ExistsWitnessOnCandidates(
      const FormulaPtr& f, const std::vector<std::string>& candidates);
  Result<std::vector<Tuple>> TopKOnCandidates(
      const FormulaPtr& f, const std::vector<std::string>& candidates,
      size_t k);

  // Candidate sets used by the collapse theorems.
  // prefix(adom(D)): for RC(S)/RC(S_left)/RC(S_reg) queries (Theorem 1/6).
  std::vector<std::string> PrefixDomCandidates() const;
  // ↓adom(D) = all strings of length ≤ max adom length: for RC(S_len)
  // (Theorem 2). Fails with ResourceExhausted when over budget.
  Result<std::vector<std::string>> LenDomCandidates() const;

 private:
  // The provider's adom for the database's current revision, or nullopt
  // (no provider, or it has no view of this revision).
  std::optional<std::vector<std::string>> ProvidedAdom() const;

  const Database* db_;
  Options options_;
  std::shared_ptr<AtomCache> cache_;
  std::shared_ptr<plan::Planner> planner_;
  std::shared_ptr<DomainProvider> domain_provider_;
  ParallelOptions parallel_;
};

}  // namespace strq

#endif  // STRQ_EVAL_RESTRICTED_EVAL_H_
