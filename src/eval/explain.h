#ifndef STRQ_EVAL_EXPLAIN_H_
#define STRQ_EVAL_EXPLAIN_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "base/status.h"
#include "base/thread_pool.h"
#include "logic/ast.h"
#include "mta/atom_cache.h"
#include "obs/json.h"
#include "obs/trace.h"
#include "plan/planner.h"
#include "relational/database.h"

namespace strq {

// The SQL EXPLAIN ANALYZE analogue for the automata engine: compiles φ to
// its answer automaton with tracing force-enabled, capturing one span per
// AST node (with output automaton sizes), every underlying automaton
// operation, and the metric counters the run moved. For state-safe queries
// the answer relation is enumerated too and matches Evaluate() exactly.
struct ExplainAnalyzeResult {
  // Columns of the answer relation, in FreeVarOrder.
  std::vector<std::string> columns;
  // The answer, empty when the query is unsafe on this database (finite is
  // false then — EXPLAIN still reports the compile trace for such queries,
  // unlike Evaluate which fails outright).
  Relation answer = Relation::Empty(0);
  bool finite = true;
  // Minimized answer-automaton size.
  int answer_states = 0;
  int64_t answer_transitions = 0;
  // Wall time of the whole call.
  double seconds = 0.0;
  // The span tree (root node "explain"; children: the plan phase, then
  // compilation per AST node, then enumeration).
  std::unique_ptr<obs::TraceNode> trace;
  // Global counters moved by this call (obs::MetricsDelta of the run).
  std::map<std::string, int64_t> metrics;
  // Latency-histogram summaries (p50/p90/p99) at the end of the call. The
  // histograms are process-cumulative: with a shared cache/planner, repeated
  // EXPLAINs show how the latency distribution shifts as the substrate
  // warms.
  std::map<std::string, obs::Histogram::Snapshot> histograms;
  // Retained-memory gauges (store.bytes / atom_cache.bytes /
  // plan.cache_bytes) at the end of the call.
  std::map<std::string, int64_t> memory;

  // ---- Plan phase --------------------------------------------------------
  // The chosen plan, rendered as an indented tree with per-node cost
  // estimates; compare against the compile spans in `trace` for the
  // estimated-vs-actual picture (spans served by the memoization substrate
  // carry a cached=1 attribute and cost ~nothing).
  std::string plan_pretty;
  // The rewritten formula the engine actually compiled.
  std::string planned_formula;
  double plan_estimated_states = 0.0;
  int64_t plan_rules_fired = 0;
  int64_t plan_shared_subplans = 0;
  bool plan_cache_hit = false;

  // Indented per-node text rendering, states and wall time per span.
  std::string Pretty() const;
  // Machine-readable form, schema "strq.explain.v1" — see
  // docs/OBSERVABILITY.md.
  obs::JsonValue ToJson() const;
};

// Runs the analysis. With `cache == nullptr` the call uses a fresh
// AutomatonStore + AtomCache of its own, so the trace always shows the full
// cost of the query (store.* metrics then report only intra-query sharing).
// Pass a shared cache to see how a warm substrate changes the picture — the
// shell does this, so repeated EXPLAINs show the cross-query hit rates.
// Tracing is enabled for the duration of the call and restored afterwards.
// Pass a shared `planner` the same way to see plan-cache hits across
// repeated EXPLAINs (null: the engine's private default planner).
// `parallel` is forwarded to the engine: with more than one effective
// thread, independent subplans compile concurrently and the trace becomes a
// parallel profile — worker spans carry their thread tag (rendered @tN) and
// stitch under the submitting span, while answers and canonical store ids
// stay identical to the serial run.
Result<ExplainAnalyzeResult> ExplainAnalyze(
    const Database* db, const FormulaPtr& f, size_t max_tuples = 1000000,
    std::shared_ptr<AtomCache> cache = nullptr,
    std::shared_ptr<plan::Planner> planner = nullptr,
    ParallelOptions parallel = ParallelOptions{1});

}  // namespace strq

#endif  // STRQ_EVAL_EXPLAIN_H_
