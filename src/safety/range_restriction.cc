#include "safety/range_restriction.h"

#include <algorithm>
#include <set>

#include "base/string_ops.h"
#include "eval/automata_eval.h"

namespace strq {

int EffectiveK(const FormulaPtr& phi) {
  // Formula size dominates quantifier rank, the number of one-symbol-moving
  // atoms, and the constant lengths (each constant character is a term node).
  return FormulaSize(phi);
}

namespace {

std::string AlphabetChars(const Alphabet& alphabet) {
  std::string chars;
  for (int i = 0; i < alphabet.size(); ++i) {
    chars.push_back(alphabet.CharOf(static_cast<Symbol>(i)));
  }
  return chars;
}

// {u·w : u ∈ prefix(base) ∪ {ε}, |w| ≤ k} — exactly the Lemma 1 set
// {s : d(s, prefix(C)) ≤ k}: the longest common prefix u = s ∩ prefix(C)
// leaves a residual w of length d(s, prefix(C)).
Result<std::set<std::string>> PrefixReach(const std::vector<std::string>& base,
                                          int k, const std::string& chars,
                                          size_t budget) {
  std::vector<std::string> prefixes = PrefixClosure(base);
  if (prefixes.empty()) prefixes.push_back("");
  std::set<std::string> out;
  std::vector<std::string> suffixes = AllStringsUpToLength(chars, k);
  for (const std::string& u : prefixes) {
    for (const std::string& w : suffixes) {
      out.insert(u + w);
      if (out.size() > budget) {
        return ResourceExhaustedError("γ_k candidate set over budget");
      }
    }
  }
  return out;
}

}  // namespace

Result<std::vector<std::string>> GammaCandidates(StructureId structure, int k,
                                                 const Database& db,
                                                 size_t budget) {
  std::string chars = AlphabetChars(db.alphabet());
  std::vector<std::string> adom = db.ActiveDomain();
  switch (structure) {
    case StructureId::kS:
    case StructureId::kSReg: {
      STRQ_ASSIGN_OR_RETURN(std::set<std::string> out,
                            PrefixReach(adom, k, chars, budget));
      return std::vector<std::string>(out.begin(), out.end());
    }
    case StructureId::kSLeft: {
      STRQ_ASSIGN_OR_RETURN(std::set<std::string> base,
                            PrefixReach(adom, k, chars, budget));
      // Close under ≤k leading-symbol removals and additions.
      std::set<std::string> out = base;
      std::set<std::string> frontier = base;
      for (int step = 0; step < k; ++step) {
        std::set<std::string> next;
        for (const std::string& s : frontier) {
          if (!s.empty()) next.insert(s.substr(1));  // head removal
          for (char a : chars) next.insert(a + s);   // head addition
          // Check inside the loop: a single closure step can multiply the
          // set by |Σ|+1, so a post-step check would first materialize it.
          if (out.size() + next.size() > budget) {
            return ResourceExhaustedError("γ_k candidate set over budget");
          }
        }
        size_t before = out.size();
        out.insert(next.begin(), next.end());
        if (out.size() == before) break;
        frontier = std::move(next);
      }
      return std::vector<std::string>(out.begin(), out.end());
    }
    case StructureId::kSInsert: {
      STRQ_ASSIGN_OR_RETURN(std::set<std::string> base,
                            PrefixReach(adom, k, chars, budget));
      // Close under ≤k single-symbol insertions (at any position) and the
      // S_left head operations (S_left ⊆ S_ins).
      std::set<std::string> out = base;
      std::set<std::string> frontier = base;
      for (int step = 0; step < k; ++step) {
        std::set<std::string> next;
        for (const std::string& s : frontier) {
          if (!s.empty()) next.insert(s.substr(1));
          for (char a : chars) {
            for (size_t pos = 0; pos <= s.size(); ++pos) {
              next.insert(s.substr(0, pos) + a + s.substr(pos));
              if (next.size() + out.size() > budget) {
                return ResourceExhaustedError(
                    "γ_k candidate set over budget");
              }
            }
          }
        }
        size_t before = out.size();
        out.insert(next.begin(), next.end());
        if (out.size() == before) break;
        frontier = std::move(next);
      }
      return std::vector<std::string>(out.begin(), out.end());
    }
    case StructureId::kSLen: {
      size_t max_len = db.MaxAdomLength() + static_cast<size_t>(k);
      double count = 1;
      for (size_t i = 0; i < max_len; ++i) {
        count = count * chars.size() + 1;
        if (count > static_cast<double>(budget)) {
          return ResourceExhaustedError("γ_k candidate set over budget");
        }
      }
      return AllStringsUpToLength(chars, static_cast<int>(max_len));
    }
    case StructureId::kConcat:
      return UnsafeError(
          "no effective safe syntax exists for RC_concat (Corollary 1)");
  }
  return InternalError("unknown structure");
}

Result<Relation> EvaluateRangeRestricted(const FormulaPtr& phi,
                                         StructureId structure,
                                         const Database& db, int k) {
  STRQ_ASSIGN_OR_RETURN(std::vector<std::string> candidates,
                        GammaCandidates(structure, k, db));
  AutomataEvaluator engine(&db);
  STRQ_ASSIGN_OR_RETURN(TrackAutomaton rel, engine.Compile(phi));
  int arity = rel.arity();
  if (arity == 0) {
    return InvalidArgumentError("range restriction of a sentence");
  }
  // Intersect the answer automaton with the candidate set on every track;
  // the result is finite by construction and enumerated exactly.
  std::vector<std::vector<std::string>> unary;
  unary.reserve(candidates.size());
  for (const std::string& s : candidates) unary.push_back({s});
  for (VarId v : std::vector<VarId>(rel.vars())) {
    STRQ_ASSIGN_OR_RETURN(
        TrackAutomaton gamma,
        TrackAutomaton::FromTuples(db.alphabet(), {v}, unary));
    STRQ_ASSIGN_OR_RETURN(rel, TrackAutomaton::Intersect(rel, gamma));
  }
  STRQ_ASSIGN_OR_RETURN(std::vector<Tuple> tuples, rel.AllTuples());
  return Relation::Create(arity, std::move(tuples));
}

Result<RangeRestrictionCheck> CheckRangeRestriction(const FormulaPtr& phi,
                                                    StructureId structure,
                                                    const Database& db,
                                                    int k) {
  AutomataEvaluator engine(&db);
  STRQ_ASSIGN_OR_RETURN(bool safe, engine.IsSafeOnDatabase(phi));
  STRQ_ASSIGN_OR_RETURN(Relation restricted,
                        EvaluateRangeRestricted(phi, structure, db, k));
  RangeRestrictionCheck check;
  check.phi_safe_on_db = safe;
  check.restricted_size = restricted.size();
  if (!safe) {
    check.coincides = false;
    check.exact_size = 0;
    return check;
  }
  STRQ_ASSIGN_OR_RETURN(Relation exact, engine.Evaluate(phi));
  check.exact_size = exact.size();
  check.coincides = exact == restricted;
  return check;
}

FormulaPtr FinitenessSentenceSLen(const std::string& unary_relation) {
  // ∃y ∀x (U(x) → |x| ≤ |y|): U is finite iff it is length-bounded.
  return FExists(
      "y", FForall("x", FImplies(FRelation(unary_relation, {TVar("x")}),
                                 FPred(PredKind::kLeqLen,
                                       {TVar("x"), TVar("y")}))));
}

Database Prop6FiniteDatabase(int max_len) {
  Database db(Alphabet::Binary());
  std::vector<Tuple> tuples;
  for (const std::string& s : AllStringsUpToLength("01", max_len)) {
    tuples.push_back({s});
  }
  Status status = db.AddRelation("U", 1, std::move(tuples));
  (void)status;  // alphabet is binary by construction
  return db;
}

Database Prop6InfiniteFamilyCut(int m, int max_len, int reps) {
  Database db(Alphabet::Binary());
  std::string block;
  for (int i = 0; i < m; ++i) block += '0';
  for (int i = 0; i < m; ++i) block += '1';
  std::vector<Tuple> tuples;
  std::string prefix;
  for (int j = 0; j <= reps; ++j) {
    for (const std::string& w : AllStringsUpToLength("01", max_len)) {
      tuples.push_back({prefix + w});
    }
    prefix += block;
  }
  Status status = db.AddRelation("U", 1, std::move(tuples));
  (void)status;
  return db;
}

}  // namespace strq
