#ifndef STRQ_SAFETY_QUERY_SAFETY_H_
#define STRQ_SAFETY_QUERY_SAFETY_H_

#include <memory>
#include <string>
#include <vector>

#include "base/status.h"
#include "base/thread_pool.h"
#include "logic/ast.h"
#include "mta/atom_cache.h"
#include "relational/database.h"

namespace strq {

// Safety decision procedures (Sections 6.1 and 6.3).

// State-safety (Proposition 7): given φ and D, is φ(D) finite? Decided
// exactly by answer-automaton finiteness. Works for RC(S), RC(S_left),
// RC(S_reg), RC(S_len) — and is impossible for RC_concat (Corollary 1),
// which surfaces here as the kUnsupported error from compilation.
// All deciders here accept an optional shared AtomCache: safety checks
// compile the same atoms and subformulas the evaluators do, so running them
// against the evaluator's cache makes the subsequent evaluation (or the next
// safety check) start warm.
Result<bool> StateSafe(const FormulaPtr& phi, const Database& db,
                       std::shared_ptr<AtomCache> cache = nullptr);

// A conjunctive query φ(x̄) ≡ ∃ȳ ⋀ᵢ Sᵢ(ūᵢ) ∧ γ(x̄, ȳ) in the sense of
// Section 6.3 (γ an arbitrary pure M-formula).
struct ConjunctiveQuery {
  std::vector<std::string> head_vars;      // x̄, the output tuple
  std::vector<std::string> exist_vars;     // ȳ
  std::vector<FormulaPtr> relation_atoms;  // the Sᵢ(ūᵢ), kRelation formulas
  FormulaPtr gamma;                        // the interpreted part (DB-free)
};

// Recognizes the CQ shape from a formula: a prefix of existential
// quantifiers over a conjunction of relation atoms and interpreted
// conjuncts (the interpreted conjuncts are gathered into γ). Relation-atom
// arguments may be arbitrary terms.
Result<ConjunctiveQuery> ExtractConjunctiveQuery(const FormulaPtr& phi);

// Safety of a conjunctive query over ALL databases (Theorem 5 via the
// decidability of Th(S_len) — realized here by the automata engine deciding
// the derived sentence over an empty database):
//
//   φ is unsafe  iff  there is an assignment to the relation-atom variables
//   and the non-head existential variables under which infinitely many
//   values of the "uncovered" head variables satisfy γ.
//
// The derived sentence uses S_len's definability of finiteness with
// parameters: ∃ z̄ ¬∃u ∀x̄ᵤ (γ → ⋀ |xᵢ| ≤ |u|). Requires γ to be DB-free
// (true by definition of a CQ).
Result<bool> ConjunctiveQuerySafe(const ConjunctiveQuery& cq,
                                  const Alphabet& alphabet,
                                  std::shared_ptr<AtomCache> cache = nullptr);

// Safety of a union of conjunctive queries: safe iff every disjunct is.
// The per-disjunct decisions are independent and run concurrently under the
// default ParallelOptions; pass ParallelOptions{1} for a serial decision.
// Answers and first-error behavior are identical at any thread count.
Result<bool> UnionOfCQsSafe(const std::vector<ConjunctiveQuery>& cqs,
                            const Alphabet& alphabet,
                            std::shared_ptr<AtomCache> cache = nullptr,
                            ParallelOptions parallel = ParallelOptions{});

// Convenience: extract-and-decide for a formula that is a CQ or a union
// (∨-tree) of CQs. Returns kUnsupported for other shapes (the paper's full
// Theorem 5 covers arbitrary Boolean combinations; this implementation
// covers the positive fragment).
Result<bool> QuerySafe(const FormulaPtr& phi, const Alphabet& alphabet,
                       std::shared_ptr<AtomCache> cache = nullptr);

}  // namespace strq

#endif  // STRQ_SAFETY_QUERY_SAFETY_H_
