#include "safety/safe_translation.h"

#include <algorithm>
#include <set>

#include "safety/range_restriction.h"

namespace strq {

Result<RaPtr> AdomExpr(const std::map<std::string, int>& schema) {
  RaPtr out;
  for (const auto& [name, arity] : schema) {
    for (int i = 0; i < arity; ++i) {
      RaPtr column = RaProject({i}, RaScan(name));
      out = out == nullptr ? column : RaUnion(std::move(out), column);
    }
  }
  if (out == nullptr) {
    // Empty schema: adom is the empty unary relation.
    out = RaDifference(RaEpsilon(), RaEpsilon());
  }
  return out;
}

namespace {

std::string AlphabetChars(const Alphabet& alphabet) {
  std::string chars;
  for (int i = 0; i < alphabet.size(); ++i) {
    chars.push_back(alphabet.CharOf(static_cast<Symbol>(i)));
  }
  return chars;
}

// X ∪ ⋃_{a∈Σ} π_new(op_a(X)) for a unary X.
RaPtr CloseOnce(RaPtr x, const std::string& chars,
                RaPtr (*op)(int, char, RaPtr)) {
  RaPtr out = x;
  for (char a : chars) {
    out = RaUnion(std::move(out), RaProject({1}, op(0, a, x)));
  }
  return out;
}

}  // namespace

Result<RaPtr> UniverseExpr(StructureId structure, int k,
                           const std::map<std::string, int>& schema,
                           const Alphabet& alphabet) {
  std::string chars = AlphabetChars(alphabet);
  STRQ_ASSIGN_OR_RETURN(RaPtr adom, AdomExpr(schema));
  // Seed with adom ∪ {ε} so the universe is never empty.
  RaPtr x = RaUnion(adom, RaEpsilon());
  switch (structure) {
    case StructureId::kS:
    case StructureId::kSReg: {
      // Close under prefixes first, then extend right by ≤ k symbols:
      // exactly the γ_k family of Theorem 3 ({u·w : u ≼ adom, |w| ≤ k},
      // the Lemma 1 reach set).
      x = RaProject({1}, RaPrefix(0, std::move(x)));
      for (int i = 0; i < k; ++i) x = CloseOnce(x, chars, &RaAddRight);
      return x;
    }
    case StructureId::kSLeft: {
      x = RaProject({1}, RaPrefix(0, std::move(x)));
      for (int i = 0; i < k; ++i) x = CloseOnce(x, chars, &RaAddRight);
      // Close under ≤ k leading-symbol additions and removals (Theorem 7).
      for (int i = 0; i < k; ++i) {
        x = CloseOnce(x, chars, &RaAddLeft);
        x = CloseOnce(x, chars, &RaTrimLeft);
      }
      return x;
    }
    case StructureId::kSInsert: {
      x = RaProject({1}, RaPrefix(0, std::move(x)));
      for (int i = 0; i < k; ++i) x = CloseOnce(x, chars, &RaAddRight);
      // Close under ≤ k single-symbol insertions at prefix positions, using
      // the RA(S_ins) insert operator: for every prefix p of s (obtained
      // with prefix_0) and letter a, add insert_a(p, s).
      for (int i = 0; i < k; ++i) {
        RaPtr with_prefixes = RaPrefix(0, x);  // columns (s, p)
        RaPtr step = x;
        for (char a : chars) {
          step = RaUnion(std::move(step),
                         RaProject({2}, RaInsert(1, 0, a, with_prefixes)));
        }
        // Head removals (S_left ⊆ S_ins).
        step = CloseOnce(std::move(step), chars, &RaTrimLeft);
        x = std::move(step);
      }
      return x;
    }
    case StructureId::kSLen: {
      // Lengthen by k (one chain of add-right suffices for the bound), then
      // take ↓: all strings of length ≤ maxlen(adom) + k (Lemma 2).
      for (int i = 0; i < k; ++i) {
        x = RaUnion(x, RaProject({1}, RaAddRight(0, chars[0], x)));
      }
      return RaProject({1}, RaDown(0, std::move(x)));
    }
    case StructureId::kConcat:
      return UnsafeError(
          "no universe expression exists for RC_concat (Corollary 1)");
  }
  return InternalError("unknown structure");
}

namespace {

// A translated subformula: an algebra expression whose columns are the
// subformula's free variables in sorted-name order.
struct Translated {
  RaPtr expr;
  std::vector<std::string> cols;
};

class Translator {
 public:
  Translator(StructureId structure, const std::map<std::string, int>& schema,
             const Alphabet& alphabet, RaPtr universe, RaPtr adom)
      : structure_(structure),
        schema_(schema),
        alphabet_(alphabet),
        universe_(std::move(universe)),
        adom_(std::move(adom)),
        prefix_adom_(RaProject({1}, RaPrefix(0, adom_))) {}

  Result<Translated> Translate(const FormulaPtr& f) {
    switch (f->kind) {
      case FormulaKind::kTrue:
        return Translated{TrueExpr(), {}};
      case FormulaKind::kFalse:
        return Translated{RaDifference(TrueExpr(), TrueExpr()), {}};
      case FormulaKind::kPred:
        if (f->pred == PredKind::kAdom) {
          return TranslateDatabaseAtom(adom_, 1, f->args);
        }
        return TranslateInterpretedAtom(f);
      case FormulaKind::kRelation: {
        auto it = schema_.find(f->relation);
        if (it == schema_.end()) {
          return InvalidArgumentError("unknown relation " + f->relation);
        }
        if (static_cast<int>(f->args.size()) != it->second) {
          return InvalidArgumentError("arity mismatch for " + f->relation);
        }
        return TranslateDatabaseAtom(RaScan(f->relation), it->second,
                                     f->args);
      }
      case FormulaKind::kNot: {
        STRQ_ASSIGN_OR_RETURN(Translated t, Translate(f->left));
        return Translated{
            RaDifference(UniversePower(t.cols.size()), t.expr), t.cols};
      }
      case FormulaKind::kAnd: {
        STRQ_ASSIGN_OR_RETURN(Translated a, Translate(f->left));
        STRQ_ASSIGN_OR_RETURN(Translated b, Translate(f->right));
        return Join(a, b);
      }
      case FormulaKind::kOr: {
        STRQ_ASSIGN_OR_RETURN(Translated a, Translate(f->left));
        STRQ_ASSIGN_OR_RETURN(Translated b, Translate(f->right));
        std::vector<std::string> target;
        std::set_union(a.cols.begin(), a.cols.end(), b.cols.begin(),
                       b.cols.end(), std::back_inserter(target));
        STRQ_ASSIGN_OR_RETURN(Translated pa, Pad(a, target));
        STRQ_ASSIGN_OR_RETURN(Translated pb, Pad(b, target));
        return Translated{RaUnion(pa.expr, pb.expr), target};
      }
      case FormulaKind::kImplies:
        return Translate(FOr(FNot(f->left), f->right));
      case FormulaKind::kIff:
        return Translate(FOr(FAnd(f->left, f->right),
                             FAnd(FNot(f->left), FNot(f->right))));
      case FormulaKind::kExists:
        return TranslateExists(*f);
      case FormulaKind::kForall:
        return Translate(FNot(FExists(f->var, FNot(f->left), f->range)));
    }
    return InternalError("unknown formula kind");
  }

 private:
  static RaPtr TrueExpr() {
    // The nullary relation {()}.
    return RaProject({}, RaEpsilon());
  }

  RaPtr UniversePower(size_t n) {
    if (n == 0) return TrueExpr();
    RaPtr out = universe_;
    for (size_t i = 1; i < n; ++i) out = RaProduct(std::move(out), universe_);
    return out;
  }

  // Pads `t` to `target` ⊇ t.cols by crossing with the universe and
  // reordering columns.
  Result<Translated> Pad(const Translated& t,
                         const std::vector<std::string>& target) {
    if (t.cols == target) return t;
    std::vector<std::string> missing;
    std::set_difference(target.begin(), target.end(), t.cols.begin(),
                        t.cols.end(), std::back_inserter(missing));
    RaPtr expr = t.expr;
    std::vector<std::string> layout = t.cols;
    for (const std::string& m : missing) {
      expr = RaProduct(std::move(expr), universe_);
      layout.push_back(m);
    }
    // Reorder to target.
    std::vector<int> projection;
    for (const std::string& v : target) {
      auto it = std::find(layout.begin(), layout.end(), v);
      if (it == layout.end()) return InternalError("pad lost a column");
      projection.push_back(static_cast<int>(it - layout.begin()));
    }
    return Translated{RaProject(std::move(projection), std::move(expr)),
                      target};
  }

  // Natural join on shared columns.
  Result<Translated> Join(const Translated& a, const Translated& b) {
    std::vector<std::string> target;
    std::set_union(a.cols.begin(), a.cols.end(), b.cols.begin(), b.cols.end(),
                   std::back_inserter(target));
    RaPtr expr = RaProduct(a.expr, b.expr);
    std::vector<FormulaPtr> eqs;
    for (size_t j = 0; j < b.cols.size(); ++j) {
      auto it = std::find(a.cols.begin(), a.cols.end(), b.cols[j]);
      if (it != a.cols.end()) {
        int left_col = static_cast<int>(it - a.cols.begin());
        int right_col = static_cast<int>(a.cols.size() + j);
        eqs.push_back(FPred(PredKind::kEq,
                            {TVar(ColumnVar(left_col)),
                             TVar(ColumnVar(right_col))}));
      }
    }
    if (!eqs.empty()) expr = RaSelect(FAndAll(eqs), std::move(expr));
    // Project to target order, taking each column's first occurrence.
    std::vector<std::string> layout = a.cols;
    layout.insert(layout.end(), b.cols.begin(), b.cols.end());
    std::vector<int> projection;
    for (const std::string& v : target) {
      auto it = std::find(layout.begin(), layout.end(), v);
      projection.push_back(static_cast<int>(it - layout.begin()));
    }
    return Translated{RaProject(std::move(projection), std::move(expr)),
                      target};
  }

  // Interpreted atom over variables v̄: σ_{atom[v̄ → columns]}(C^m).
  Result<Translated> TranslateInterpretedAtom(const FormulaPtr& atom) {
    std::set<std::string> var_set = FreeVars(atom);
    std::vector<std::string> vars(var_set.begin(), var_set.end());
    std::map<std::string, TermPtr> rename;
    for (size_t i = 0; i < vars.size(); ++i) {
      rename[vars[i]] = TVar(ColumnVar(static_cast<int>(i)));
    }
    FormulaPtr condition = SubstituteVarsQF(atom, rename);
    return Translated{RaSelect(std::move(condition),
                               UniversePower(vars.size())),
                      vars};
  }

  // Database atom (relation scan or adom) with argument terms t̄:
  // π_vars(σ_{⋀ c_i = t_i[v̄ → var columns]}(base × C^m)).
  Result<Translated> TranslateDatabaseAtom(RaPtr base, int base_arity,
                                           const std::vector<TermPtr>& args) {
    std::set<std::string> var_set;
    for (const TermPtr& t : args) {
      std::set<std::string> tv = TermVars(t);
      var_set.insert(tv.begin(), tv.end());
    }
    std::vector<std::string> vars(var_set.begin(), var_set.end());
    std::map<std::string, TermPtr> rename;
    for (size_t i = 0; i < vars.size(); ++i) {
      rename[vars[i]] =
          TVar(ColumnVar(base_arity + static_cast<int>(i)));
    }
    RaPtr expr = RaProduct(std::move(base), UniversePower(vars.size()));
    std::vector<FormulaPtr> eqs;
    for (size_t i = 0; i < args.size(); ++i) {
      eqs.push_back(FPred(PredKind::kEq,
                          {TVar(ColumnVar(static_cast<int>(i))),
                           SubstituteVars(args[i], rename)}));
    }
    if (!eqs.empty()) expr = RaSelect(FAndAll(eqs), std::move(expr));
    std::vector<int> projection;
    for (size_t i = 0; i < vars.size(); ++i) {
      projection.push_back(base_arity + static_cast<int>(i));
    }
    return Translated{RaProject(std::move(projection), std::move(expr)),
                      vars};
  }

  Result<Translated> TranslateExists(const Formula& f) {
    STRQ_ASSIGN_OR_RETURN(Translated t, Translate(f.left));
    auto it = std::find(t.cols.begin(), t.cols.end(), f.var);
    if (it == t.cols.end()) {
      // The variable does not occur. kAll and kLenDom ranges always contain
      // ε, so ∃x φ ≡ φ. kAdom is empty on an empty database; kPrefixDom is
      // empty when there are neither adom strings nor parameters. Guard
      // those by crossing with the range set and projecting back.
      if (f.range == QuantRange::kAll || f.range == QuantRange::kLenDom) {
        return t;
      }
      RaPtr guard = f.range == QuantRange::kAdom ? adom_ : prefix_adom_;
      if (f.range == QuantRange::kPrefixDom && !t.cols.empty()) {
        // Parameters exist, and ε is a prefix of any parameter.
        guard = RaUnion(std::move(guard), RaEpsilon());
      }
      RaPtr expr = RaProject(Iota(static_cast<int>(t.cols.size())),
                             RaProduct(t.expr, std::move(guard)));
      return Translated{std::move(expr), t.cols};
    }
    int x_col = static_cast<int>(it - t.cols.begin());

    RaPtr constrained = t.expr;
    if (f.range != QuantRange::kAll) {
      STRQ_ASSIGN_OR_RETURN(constrained,
                            RangeConstrain(t, x_col, f.range));
    }
    // Project the variable away.
    std::vector<int> keep;
    std::vector<std::string> cols;
    for (size_t i = 0; i < t.cols.size(); ++i) {
      if (static_cast<int>(i) == x_col) continue;
      keep.push_back(static_cast<int>(i));
      cols.push_back(t.cols[i]);
    }
    return Translated{RaProject(std::move(keep), std::move(constrained)),
                      std::move(cols)};
  }

  // Restricts column x of `t` to the quantifier range (Sections 5.1/5.2):
  // membership in the adom-derived set, or domination by a parameter column.
  Result<RaPtr> RangeConstrain(const Translated& t, int x_col,
                               QuantRange range) {
    int arity = static_cast<int>(t.cols.size());
    // Part 1: x in the adom-derived set — semijoin with the unary range set.
    RaPtr range_set = range == QuantRange::kAdom ? adom_ : prefix_adom_;
    if (range == QuantRange::kLenDom) {
      range_set = adom_;  // compared by length below
    }
    RaPtr joined = RaProduct(t.expr, range_set);
    PredKind cmp = range == QuantRange::kLenDom ? PredKind::kLeqLen
                                                : PredKind::kEq;
    RaPtr part1 = RaProject(
        Iota(arity),
        RaSelect(FPred(cmp, {TVar(ColumnVar(x_col)), TVar(ColumnVar(arity))}),
                 std::move(joined)));
    if (range == QuantRange::kAdom) return part1;

    // Part 2: x dominated by a parameter column (x ≼ z, or |x| ≤ |z|).
    PredKind param_cmp = range == QuantRange::kLenDom ? PredKind::kLeqLen
                                                      : PredKind::kPrefix;
    RaPtr out = part1;
    if (range == QuantRange::kLenDom) {
      // ε is always in the length range (the max over an empty set is 0).
      out = RaUnion(std::move(out),
                    RaSelect(FPred(PredKind::kEq,
                                   {TVar(ColumnVar(x_col)), TConst("")}),
                             t.expr));
    }
    for (int z = 0; z < arity; ++z) {
      if (z == x_col) continue;
      out = RaUnion(std::move(out),
                    RaSelect(FPred(param_cmp, {TVar(ColumnVar(x_col)),
                                               TVar(ColumnVar(z))}),
                             t.expr));
    }
    return out;
  }

  static std::vector<int> Iota(int n) {
    std::vector<int> out(n);
    for (int i = 0; i < n; ++i) out[i] = i;
    return out;
  }

  StructureId structure_;
  const std::map<std::string, int>& schema_;
  const Alphabet& alphabet_;
  RaPtr universe_;
  RaPtr adom_;
  RaPtr prefix_adom_;
};

}  // namespace

Result<RaPtr> TranslateToAlgebra(const FormulaPtr& phi, StructureId structure,
                                 const std::map<std::string, int>& schema,
                                 const Alphabet& alphabet, int k) {
  STRQ_RETURN_IF_ERROR(CheckInLanguage(phi, structure, alphabet));
  if (k < 0) k = EffectiveK(phi);
  STRQ_ASSIGN_OR_RETURN(RaPtr universe,
                        UniverseExpr(structure, k, schema, alphabet));
  STRQ_ASSIGN_OR_RETURN(RaPtr adom, AdomExpr(schema));
  Translator translator(structure, schema, alphabet, std::move(universe),
                        std::move(adom));
  STRQ_ASSIGN_OR_RETURN(Translated t, translator.Translate(phi));
  return t.expr;
}

}  // namespace strq
