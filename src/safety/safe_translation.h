#ifndef STRQ_SAFETY_SAFE_TRANSLATION_H_
#define STRQ_SAFETY_SAFE_TRANSLATION_H_

#include <map>
#include <string>

#include "base/status.h"
#include "logic/ast.h"
#include "logic/signature.h"
#include "relational/algebra.h"

namespace strq {

// The effective side of Theorems 4 and 8: safe RC(M) = RA(M).
//
// TranslateToAlgebra compiles a relational-calculus query into an algebra
// plan over the operators of RA(M). The plan evaluates every variable over
// the *universe expression* C — an RA term materializing the γ_k candidate
// set of Theorems 3/7 (built with exactly the operators the paper adds to
// the algebra for this purpose: prefix_i and add_i^a for S, ↓_i for S_len,
// addleft/trimleft for S_left). On every database where the query is safe
// and has quantifier rank ≤ k, the plan computes the query's exact answer;
// tests and benches verify this against the exact automata engine.
//
// Column convention: the output columns are the query's free variables in
// sorted-name order (matching AutomataEvaluator::FreeVarOrder).

// adom(D) as a unary algebra expression (union of column projections).
Result<RaPtr> AdomExpr(const std::map<std::string, int>& schema);

// The universe/candidate expression C for RA(structure) with reach k.
Result<RaPtr> UniverseExpr(StructureId structure, int k,
                           const std::map<std::string, int>& schema,
                           const Alphabet& alphabet);

// Translates φ into an RA(structure) plan. k defaults to EffectiveK(φ)
// when negative.
Result<RaPtr> TranslateToAlgebra(const FormulaPtr& phi, StructureId structure,
                                 const std::map<std::string, int>& schema,
                                 const Alphabet& alphabet, int k = -1);

}  // namespace strq

#endif  // STRQ_SAFETY_SAFE_TRANSLATION_H_
