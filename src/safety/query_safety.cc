#include "safety/query_safety.h"

#include <set>

#include "base/thread_pool.h"
#include "eval/automata_eval.h"
#include "obs/trace.h"

namespace strq {

Result<bool> StateSafe(const FormulaPtr& phi, const Database& db,
                       std::shared_ptr<AtomCache> cache) {
  // The embedded evaluator routes through its planner (plan rewrites are
  // equivalence-preserving, so finiteness of φ(D) is unchanged) — safety
  // decisions benefit from the same miniscoping/reordering as evaluation.
  AutomataEvaluator engine(&db, std::move(cache));
  return engine.IsSafeOnDatabase(phi);
}

namespace {

void FlattenConjuncts(const FormulaPtr& f, std::vector<FormulaPtr>& out) {
  if (f->kind == FormulaKind::kAnd) {
    FlattenConjuncts(f->left, out);
    FlattenConjuncts(f->right, out);
  } else {
    out.push_back(f);
  }
}

}  // namespace

Result<ConjunctiveQuery> ExtractConjunctiveQuery(const FormulaPtr& phi) {
  ConjunctiveQuery cq;
  FormulaPtr body = phi;
  std::set<std::string> exist_vars;
  while (body->kind == FormulaKind::kExists) {
    if (body->range != QuantRange::kAll) {
      return UnsupportedError(
          "conjunctive queries use plain existential quantifiers");
    }
    exist_vars.insert(body->var);
    body = body->left;
  }
  std::vector<FormulaPtr> conjuncts;
  FlattenConjuncts(body, conjuncts);
  std::vector<FormulaPtr> interpreted;
  for (const FormulaPtr& c : conjuncts) {
    if (c->kind == FormulaKind::kRelation) {
      cq.relation_atoms.push_back(c);
    } else if (!MentionsDatabase(c)) {
      interpreted.push_back(c);
    } else {
      return UnsupportedError(
          "conjunct is neither a relation atom nor database-free: " +
          ToString(c));
    }
  }
  cq.gamma = FAndAll(interpreted);
  std::set<std::string> head = FreeVars(phi);
  cq.head_vars.assign(head.begin(), head.end());
  cq.exist_vars.assign(exist_vars.begin(), exist_vars.end());
  return cq;
}

Result<bool> ConjunctiveQuerySafe(const ConjunctiveQuery& cq,
                                  const Alphabet& alphabet,
                                  std::shared_ptr<AtomCache> cache) {
  if (cq.head_vars.empty()) return true;  // Boolean queries are safe
  if (MentionsDatabase(cq.gamma)) {
    return InvalidArgumentError("γ must be database-free");
  }

  // Unsafety criterion (see header): ∃w̄ ¬∃u ∀x̄ ((∃ȳ γ ∧ ⋀ tⱼ = wⱼ) →
  // ⋀ᵢ |xᵢ| ≤ |u|), where the wⱼ stand for the database values of the
  // relation-atom argument terms. Decided over ⟨Σ*⟩ with the automata
  // engine (Theorem 5: finiteness is definable with parameters in S_len,
  // whose theory is decidable).
  std::vector<FormulaPtr> term_equations;
  std::vector<std::string> w_names;
  int w_counter = 0;
  for (const FormulaPtr& atom : cq.relation_atoms) {
    for (const TermPtr& t : atom->args) {
      std::string w = "_w" + std::to_string(w_counter++);
      w_names.push_back(w);
      term_equations.push_back(FPred(PredKind::kEq, {t, TVar(w)}));
    }
  }

  // ∃ȳ (γ ∧ ⋀ tⱼ = wⱼ)
  FormulaPtr inner = FAnd(cq.gamma, FAndAll(term_equations));
  for (const std::string& y : cq.exist_vars) inner = FExists(y, inner);

  // ⋀ᵢ |xᵢ| ≤ |u|
  std::vector<FormulaPtr> bounds;
  for (const std::string& x : cq.head_vars) {
    bounds.push_back(FPred(PredKind::kLeqLen, {TVar(x), TVar("_u")}));
  }
  FormulaPtr bounded = FExists(
      "_u", [&] {
        FormulaPtr all = FImplies(inner, FAndAll(bounds));
        for (const std::string& x : cq.head_vars) all = FForall(x, all);
        return all;
      }());

  FormulaPtr unsafe_sentence = FNot(bounded);
  for (const std::string& w : w_names) {
    unsafe_sentence = FExists(w, unsafe_sentence);
  }

  Database empty(alphabet);
  AutomataEvaluator engine(&empty, std::move(cache));
  STRQ_ASSIGN_OR_RETURN(bool unsafe, engine.EvaluateSentence(unsafe_sentence));
  return !unsafe;
}

Result<bool> UnionOfCQsSafe(const std::vector<ConjunctiveQuery>& cqs,
                            const Alphabet& alphabet,
                            std::shared_ptr<AtomCache> cache,
                            ParallelOptions parallel) {
  // The per-disjunct decisions are independent (each builds its own engine
  // over its own empty database; the shared AtomCache is thread-safe), so
  // decide them concurrently. Results are combined in index order, so the
  // answer — and which error surfaces first — matches the serial loop.
  int n = static_cast<int>(cqs.size());
  if (n > 1 && !parallel.serial()) {
    std::vector<Result<bool>> results(
        static_cast<size_t>(n), Result<bool>(InternalError("cq not decided")));
    ThreadPool::ParallelFor(parallel.num_threads, n, [&](int i) {
      results[i] = ConjunctiveQuerySafe(cqs[i], alphabet, cache);
    });
    for (Result<bool>& r : results) {
      STRQ_ASSIGN_OR_RETURN(bool safe, std::move(r));
      if (!safe) return false;
    }
    return true;
  }
  for (const ConjunctiveQuery& cq : cqs) {
    STRQ_ASSIGN_OR_RETURN(bool safe, ConjunctiveQuerySafe(cq, alphabet, cache));
    if (!safe) return false;
  }
  return true;
}

namespace {

Status CollectDisjuncts(const FormulaPtr& f, std::vector<FormulaPtr>& out) {
  if (f->kind == FormulaKind::kOr) {
    STRQ_RETURN_IF_ERROR(CollectDisjuncts(f->left, out));
    return CollectDisjuncts(f->right, out);
  }
  out.push_back(f);
  return Status::Ok();
}

}  // namespace

Result<bool> QuerySafe(const FormulaPtr& phi, const Alphabet& alphabet,
                       std::shared_ptr<AtomCache> cache) {
  std::vector<FormulaPtr> disjuncts;
  STRQ_RETURN_IF_ERROR(CollectDisjuncts(phi, disjuncts));
  std::vector<ConjunctiveQuery> cqs;
  for (const FormulaPtr& d : disjuncts) {
    STRQ_ASSIGN_OR_RETURN(ConjunctiveQuery cq, ExtractConjunctiveQuery(d));
    cqs.push_back(std::move(cq));
  }
  return UnionOfCQsSafe(cqs, alphabet, std::move(cache));
}

}  // namespace strq
