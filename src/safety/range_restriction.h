#ifndef STRQ_SAFETY_RANGE_RESTRICTION_H_
#define STRQ_SAFETY_RANGE_RESTRICTION_H_

#include <string>
#include <vector>

#include "base/status.h"
#include "logic/ast.h"
#include "logic/signature.h"
#include "relational/database.h"

namespace strq {

// Range-restricted queries (Section 6.1). A range-restricted query is a pair
// Q = (γ, φ) with γ algebraic; its semantics is Q(D) = γ(adom(D))ⁿ ∩ φ(D),
// which is finite by construction. Theorems 3 and 7 state that for each of
// S, S_len, S_left, S_reg there is a recursive family Γ = {γ_k} such that
// every safe query coincides with (γ_k, φ) for the effectively-computable
// constant k of Lemma 1/2.
//
// This module realizes Γ *semantically*: GammaCandidates(structure, k, D)
// materializes the finite set γ_k(adom(D)) ⊆ Σ* exactly as in the proofs:
//   S, S_reg : prefixes of adom-strings extended by at most k symbols
//              (Lemma 1: a witness with d(s, prefix(D)) > k pumps to
//              infinitely many)
//   S_len    : all strings of length ≤ maxlen(adom) + k (Lemma 2)
//   S_left   : the S-set closed under ≤k leading-symbol additions and
//              removals (the Theorem 7 bound; the paper defers the long
//              construction to the full version — this family is validated
//              empirically against the exact engine in tests and benches)

// The effective constant k for a query, per the remark after Corollary 5:
// computable for restricted-quantifier queries. We use a conservative
// syntactic bound (formula size), which dominates the per-atom reach of
// every operation in the signatures (each atom moves ≤ 1 symbol, constants
// contribute their length).
int EffectiveK(const FormulaPtr& phi);

// γ_k(adom(D)) as an explicit sorted string set. Fails with
// ResourceExhausted if the set would exceed `budget` strings (the S_len
// family is exponential; the others grow by |Σ|^k).
Result<std::vector<std::string>> GammaCandidates(StructureId structure, int k,
                                                 const Database& db,
                                                 size_t budget = 2000000);

// Evaluates the range-restricted query (γ_k, φ): filters γ_k(adom)ⁿ through
// φ using the exact automata engine for the membership test. Always finite.
Result<Relation> EvaluateRangeRestricted(const FormulaPtr& phi,
                                         StructureId structure,
                                         const Database& db, int k);

// Theorem 3 / 7 verdict on a specific database: if φ is safe on D, does
// (γ_k, φ) coincide with φ on D? Returns the pair of sizes for diagnostics.
struct RangeRestrictionCheck {
  bool phi_safe_on_db;     // state-safety of φ on D
  bool coincides;          // (γ_k, φ)(D) == φ(D) (only meaningful if safe)
  size_t restricted_size;  // |(γ_k, φ)(D)|
  size_t exact_size;       // |φ(D)| when finite
};
Result<RangeRestrictionCheck> CheckRangeRestriction(const FormulaPtr& phi,
                                                    StructureId structure,
                                                    const Database& db,
                                                    int k);

// Section 6.1: finiteness of a unary predicate U is definable in RC(S_len).
// Returns the sentence Φ^safe with U(·) replaced by membership in the named
// database relation: ∃y ∀x (U(x) → |x| ≤ |y|).
FormulaPtr FinitenessSentenceSLen(const std::string& unary_relation);

// Proposition 6's counterexample families: databases on which finiteness
// cannot be distinguished by rank-k RC(S) sentences. D_fin(K) holds all
// strings of length ≤ K; D_inf(m, K, reps) holds the finite cut
// {(0^m 1^m)^j · w : j ≤ reps, |w| ≤ K} of the infinite set (0^m 1^m)*·Σ^≤K.
Database Prop6FiniteDatabase(int max_len);
Database Prop6InfiniteFamilyCut(int m, int max_len, int reps);

}  // namespace strq

#endif  // STRQ_SAFETY_RANGE_RESTRICTION_H_
