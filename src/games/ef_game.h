#ifndef STRQ_GAMES_EF_GAME_H_
#define STRQ_GAMES_EF_GAME_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "base/status.h"

namespace strq {

// Ehrenfeucht–Fraïssé games on finite relational structures.
//
// The paper's inexpressibility results (Proposition 2's proof, Proposition 6,
// Corollaries 2/3's "parity is not expressible") are EF-game arguments. This
// solver machine-checks such arguments on finite instances: duplicator wins
// the k-round game on (A, B) iff A and B agree on all FO sentences of
// quantifier rank ≤ k.
class FiniteStructure {
 public:
  explicit FiniteStructure(int universe_size)
      : universe_size_(universe_size) {}

  int universe_size() const { return universe_size_; }

  // Adds (or extends) a relation instance; elements must be in range.
  Status AddRelation(const std::string& name, int arity,
                     std::set<std::vector<int>> tuples);

  const std::map<std::string, std::pair<int, std::set<std::vector<int>>>>&
  relations() const {
    return relations_;
  }

  // A linear order 0 < 1 < ... < n-1 with binary relation "<".
  static FiniteStructure LinearOrder(int n);

 private:
  int universe_size_;
  std::map<std::string, std::pair<int, std::set<std::vector<int>>>>
      relations_;
};

// Does the duplicator have a winning strategy in the `rounds`-round EF game
// on A and B (starting from empty boards)? Exhaustive memoized game search;
// cost is O((|A|·|B|)^rounds), fine for the small structures used in the
// inexpressibility demonstrations. Structures must have identical relation
// names and arities.
Result<bool> DuplicatorWins(const FiniteStructure& a, const FiniteStructure& b,
                            int rounds);

// Variant starting from pinned elements (partial assignments), used to test
// formulas with free variables.
Result<bool> DuplicatorWinsFrom(const FiniteStructure& a,
                                const FiniteStructure& b,
                                const std::vector<int>& a_elems,
                                const std::vector<int>& b_elems, int rounds);

}  // namespace strq

#endif  // STRQ_GAMES_EF_GAME_H_
