#include "games/ef_game.h"

#include <algorithm>

namespace strq {

Status FiniteStructure::AddRelation(const std::string& name, int arity,
                                    std::set<std::vector<int>> tuples) {
  if (arity < 0) return InvalidArgumentError("negative arity");
  for (const std::vector<int>& t : tuples) {
    if (static_cast<int>(t.size()) != arity) {
      return InvalidArgumentError("tuple arity mismatch in " + name);
    }
    for (int e : t) {
      if (e < 0 || e >= universe_size_) {
        return InvalidArgumentError("element out of range in " + name);
      }
    }
  }
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    relations_.emplace(name, std::make_pair(arity, std::move(tuples)));
  } else {
    if (it->second.first != arity) {
      return InvalidArgumentError("conflicting arity for " + name);
    }
    it->second.second.insert(tuples.begin(), tuples.end());
  }
  return Status::Ok();
}

FiniteStructure FiniteStructure::LinearOrder(int n) {
  FiniteStructure s(n);
  std::set<std::vector<int>> lt;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) lt.insert({i, j});
  }
  Status status = s.AddRelation("<", 2, std::move(lt));
  (void)status;  // construction is valid by design
  return s;
}

namespace {

// Do the pinned tuples (ā, b̄) define a partial isomorphism?
bool PartialIsomorphism(const FiniteStructure& a, const FiniteStructure& b,
                        const std::vector<int>& a_elems,
                        const std::vector<int>& b_elems) {
  size_t n = a_elems.size();
  // Equality pattern must match.
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if ((a_elems[i] == a_elems[j]) != (b_elems[i] == b_elems[j])) {
        return false;
      }
    }
  }
  // Every relation must agree on all tuples over the pinned positions.
  for (const auto& [name, rel_a] : a.relations()) {
    auto it = b.relations().find(name);
    if (it == b.relations().end()) return false;
    const auto& rel_b = it->second;
    int arity = rel_a.first;
    if (rel_b.first != arity) return false;
    // Enumerate position tuples (n^arity, tiny in our use).
    std::vector<size_t> index(arity, 0);
    if (n == 0) {
      if (arity == 0 && (rel_a.second.count({}) != rel_b.second.count({}))) {
        return false;
      }
      continue;
    }
    while (true) {
      std::vector<int> ta(arity), tb(arity);
      for (int i = 0; i < arity; ++i) {
        ta[i] = a_elems[index[i]];
        tb[i] = b_elems[index[i]];
      }
      if (rel_a.second.count(ta) != rel_b.second.count(tb)) return false;
      int pos = arity - 1;
      while (pos >= 0 && ++index[pos] == n) {
        index[pos] = 0;
        --pos;
      }
      if (pos < 0) break;
    }
  }
  return true;
}

bool Wins(const FiniteStructure& a, const FiniteStructure& b,
          std::vector<int>& a_elems, std::vector<int>& b_elems, int rounds) {
  if (!PartialIsomorphism(a, b, a_elems, b_elems)) return false;
  if (rounds == 0) return true;
  // Spoiler plays in A: duplicator must answer in B; and vice versa.
  for (int x = 0; x < a.universe_size(); ++x) {
    bool answerable = false;
    a_elems.push_back(x);
    for (int y = 0; y < b.universe_size() && !answerable; ++y) {
      b_elems.push_back(y);
      answerable = Wins(a, b, a_elems, b_elems, rounds - 1);
      b_elems.pop_back();
    }
    a_elems.pop_back();
    if (!answerable) return false;
  }
  for (int y = 0; y < b.universe_size(); ++y) {
    bool answerable = false;
    b_elems.push_back(y);
    for (int x = 0; x < a.universe_size() && !answerable; ++x) {
      a_elems.push_back(x);
      answerable = Wins(a, b, a_elems, b_elems, rounds - 1);
      a_elems.pop_back();
    }
    b_elems.pop_back();
    if (!answerable) return false;
  }
  return true;
}

}  // namespace

Result<bool> DuplicatorWinsFrom(const FiniteStructure& a,
                                const FiniteStructure& b,
                                const std::vector<int>& a_elems,
                                const std::vector<int>& b_elems, int rounds) {
  if (a_elems.size() != b_elems.size()) {
    return InvalidArgumentError("pinned tuples must have equal length");
  }
  if (rounds < 0) return InvalidArgumentError("negative round count");
  for (const auto& [name, rel] : a.relations()) {
    auto it = b.relations().find(name);
    if (it == b.relations().end() || it->second.first != rel.first) {
      return InvalidArgumentError("structures have different signatures");
    }
  }
  if (b.relations().size() != a.relations().size()) {
    return InvalidArgumentError("structures have different signatures");
  }
  std::vector<int> xs = a_elems;
  std::vector<int> ys = b_elems;
  return Wins(a, b, xs, ys, rounds);
}

Result<bool> DuplicatorWins(const FiniteStructure& a, const FiniteStructure& b,
                            int rounds) {
  return DuplicatorWinsFrom(a, b, {}, {}, rounds);
}

}  // namespace strq
