#include "mta/conv.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace strq {

ConvAlphabet::ConvAlphabet(int base_size, int arity, int num_letters)
    : base_size_(base_size), arity_(arity), num_letters_(num_letters) {
  pow_.resize(arity_ + 1);
  pow_[0] = 1;
  // Create() guarantees (|Σ|+1)^arity fits the Symbol space, so these never
  // overflow int.
  for (int t = 1; t <= arity_; ++t) pow_[t] = pow_[t - 1] * (base_size_ + 1);
}

Result<ConvAlphabet> ConvAlphabet::Create(int base_size, int arity) {
  if (base_size <= 0) return InvalidArgumentError("base alphabet empty");
  if (arity < 0) return InvalidArgumentError("negative arity");
  long long letters = 1;
  for (int i = 0; i < arity; ++i) {
    letters *= base_size + 1;
    if (letters > std::numeric_limits<Symbol>::max()) {
      return ResourceExhaustedError(
          "convolution alphabet too large: arity " + std::to_string(arity) +
          " over base " + std::to_string(base_size));
    }
  }
  return ConvAlphabet(base_size, arity, static_cast<int>(letters));
}

Symbol ConvAlphabet::Encode(const std::vector<int>& digits) const {
  assert(static_cast<int>(digits.size()) == arity_);
  int letter = 0;
  for (int i = arity_ - 1; i >= 0; --i) {
    assert(digits[i] >= 0 && digits[i] <= base_size_);
    letter = letter * (base_size_ + 1) + digits[i];
  }
  return static_cast<Symbol>(letter);
}

std::vector<int> ConvAlphabet::Decode(Symbol letter) const {
  std::vector<int> digits(arity_);
  int v = letter;
  for (int i = 0; i < arity_; ++i) {
    digits[i] = v % (base_size_ + 1);
    v /= (base_size_ + 1);
  }
  assert(v == 0);
  return digits;
}

bool ConvAlphabet::IsAllPad(Symbol letter) const {
  return letter == static_cast<Symbol>(num_letters_ - 1);
}

std::vector<Symbol> ConvAlphabet::Convolve(
    const std::vector<std::vector<Symbol>>& tuple) const {
  assert(static_cast<int>(tuple.size()) == arity_);
  size_t max_len = 0;
  for (const auto& w : tuple) max_len = std::max(max_len, w.size());
  std::vector<Symbol> word;
  word.reserve(max_len);
  std::vector<int> digits(arity_);
  for (size_t i = 0; i < max_len; ++i) {
    for (int t = 0; t < arity_; ++t) {
      digits[t] = i < tuple[t].size() ? static_cast<int>(tuple[t][i]) : pad();
    }
    word.push_back(Encode(digits));
  }
  return word;
}

std::vector<std::vector<Symbol>> ConvAlphabet::Deconvolve(
    const std::vector<Symbol>& word) const {
  std::vector<std::vector<Symbol>> tuple(arity_);
  for (Symbol letter : word) {
    std::vector<int> digits = Decode(letter);
    for (int t = 0; t < arity_; ++t) {
      if (digits[t] != pad()) {
        tuple[t].push_back(static_cast<Symbol>(digits[t]));
      }
    }
  }
  return tuple;
}

Result<std::vector<Symbol>> ConvAlphabet::ConvolveStrings(
    const Alphabet& alphabet, const std::vector<std::string>& tuple) const {
  if (static_cast<int>(tuple.size()) != arity_) {
    return InvalidArgumentError("tuple arity mismatch");
  }
  std::vector<std::vector<Symbol>> encoded;
  encoded.reserve(tuple.size());
  for (const std::string& s : tuple) {
    STRQ_ASSIGN_OR_RETURN(std::vector<Symbol> w, alphabet.Encode(s));
    encoded.push_back(std::move(w));
  }
  return Convolve(encoded);
}

std::vector<std::string> ConvAlphabet::DeconvolveStrings(
    const Alphabet& alphabet, const std::vector<Symbol>& word) const {
  std::vector<std::vector<Symbol>> tuple = Deconvolve(word);
  std::vector<std::string> out;
  out.reserve(tuple.size());
  for (const auto& w : tuple) out.push_back(alphabet.Decode(w));
  return out;
}

}  // namespace strq
