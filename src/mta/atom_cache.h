#ifndef STRQ_MTA_ATOM_CACHE_H_
#define STRQ_MTA_ATOM_CACHE_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "automata/store.h"
#include "base/alphabet.h"
#include "base/status.h"
#include "logic/ast.h"
#include "mta/track_automaton.h"

namespace strq {

// A per-alphabet cache of compiled atomic relations, shared across the
// evaluation engines (automata, restricted, algebra), the safety deciders
// and EXPLAIN ANALYZE. It closes the loop of the hash-consing substrate:
//
//  * the AutomatonStore deduplicates at the *language* level (unique table)
//    and the *operation* level (computed table);
//  * the AtomCache deduplicates at the *atom* level: each atomic predicate
//    (x ≼ y, x = w, LIKE patterns, database tables, …) is compiled once per
//    database lifetime, in canonical variables 0..k-1, and every later
//    occurrence is a rename of the cached canonical automaton — renames of
//    interned handles are themselves memoized in the store.
//
// All atoms handed out are built against one AutomatonStore (by default the
// process-wide store), so every downstream first-order operation performed
// by a compiler using this cache lands in the same computed table. The
// store (and the cache) must outlive every automaton derived from them.
//
// Thread-safe; cheap to share via shared_ptr between evaluator instances.
// Misses are SINGLE-FLIGHT: when concurrent sessions miss on the same key,
// one thread builds while the others wait on it and then share the result,
// so a popular atom is compiled once no matter how many sessions race for
// it. If the builder fails, one waiter retries (transient failures — e.g. a
// deadline abort — must not poison the key for later callers).
class AtomCache {
 public:
  struct Stats {
    int64_t hits = 0;            // canonical atom served from the cache
    int64_t misses = 0;          // canonical atom compiled
    int64_t pattern_hits = 0;    // LIKE/regex/SIMILAR pattern reused
    int64_t pattern_misses = 0;  // pattern compiled
    int64_t singleflight_waits = 0;  // waited on another thread's build
    int64_t evictions = 0;           // dead-revision entries dropped
    // Bytes currently retained by the cache's OWN bookkeeping (keys,
    // handles, track metadata). The automaton tables a cached atom points
    // at are owned — and already accounted — by the AutomatonStore, so
    // store.bytes + atom_cache.bytes never counts a DFA twice. Mirrored
    // into obs::MemCategory::kAtomCache; returns to zero on destruction.
    int64_t bytes = 0;
  };

  // `store == nullptr` means AutomatonStore::Default(). The store must
  // outlive the cache.
  explicit AtomCache(Alphabet alphabet, const AutomatonStore* store = nullptr);
  ~AtomCache();
  AtomCache(const AtomCache&) = delete;
  AtomCache& operator=(const AtomCache&) = delete;

  const Alphabet& alphabet() const { return alphabet_; }
  const AutomatonStore& store() const { return *store_; }

  // --- Atomic predicates (see mta/atoms.h for the semantics) --------------
  // Variables passed to one call must be pairwise distinct (the formula
  // compilers freshen repeated variables before calling in here).
  Result<TrackAutomaton> Equal(VarId x, VarId y);
  Result<TrackAutomaton> Prefix(VarId x, VarId y);
  Result<TrackAutomaton> StrictPrefix(VarId x, VarId y);
  Result<TrackAutomaton> OneStep(VarId x, VarId y);
  Result<TrackAutomaton> LastSymbol(char a, VarId x);
  Result<TrackAutomaton> AppendGraph(char a, VarId x, VarId y);
  Result<TrackAutomaton> PrependGraph(char a, VarId x, VarId y);
  Result<TrackAutomaton> TrimLeadingGraph(char a, VarId x, VarId y);
  Result<TrackAutomaton> InsertGraph(char a, VarId p, VarId x, VarId y);
  Result<TrackAutomaton> Const(const std::string& w, VarId x);
  Result<TrackAutomaton> EqLen(VarId x, VarId y);
  Result<TrackAutomaton> LeqLen(VarId x, VarId y);
  Result<TrackAutomaton> LexLeq(VarId x, VarId y);
  Result<TrackAutomaton> Lcp(VarId x, VarId y, VarId z);
  Result<TrackAutomaton> MaxLen(int max_len, VarId x);
  // `lang` must be interned (typically a CompiledPattern result); the cache
  // key is its intern id, which is process-unique and never reused.
  Result<TrackAutomaton> Member(const DfaRef& lang, VarId x);
  Result<TrackAutomaton> SuffixIn(const DfaRef& lang, VarId x, VarId y);

  // Compiles a LIKE/SIMILAR/regex pattern over the cache's alphabet to an
  // interned DFA, memoized per (pattern, syntax). Keeps the historical
  // pattern_cache.{hits,misses} metrics truthful.
  Result<DfaRef> CompiledPattern(const std::string& pattern,
                                 PatternSyntax syntax);

  // Read-only probe of the pattern cache: the already-compiled DFA for
  // (pattern, syntax), or nullopt without compiling anything. The planner's
  // cost model uses this to price pattern leaves it has seen before.
  std::optional<DfaRef> PeekPattern(const std::string& pattern,
                                    PatternSyntax syntax) const;

  // Compiles the bounded-edit-distance neighborhood { v : d(v, word) <= k }
  // (a sparse Levenshtein automaton, determinized on the fly) to an interned
  // DFA over the base alphabet, memoized per (word, k) in the same
  // single-flight pattern cache as CompiledPattern.
  Result<DfaRef> CompiledNear(const std::string& word, int max_edits);

  // A finite relation given extensionally (database tables, active-domain
  // and prefix-domain automata). `key` must identify the *content* — the
  // evaluators use "rel:<name>:<revision>" style keys, where revisions are
  // process-unique — so the supplier is only invoked on the first miss.
  Result<TrackAutomaton> TableTrie(
      const std::string& key, const std::vector<VarId>& vars,
      const std::function<std::vector<std::vector<std::string>>()>& tuples);

  // TableTrie with an arbitrary builder: same keyspace ("rel:<name>:<rev>"
  // style, so EvictRevisionEntries reclaims these entries too) and the same
  // single-flight miss path, but the automaton comes from `build` instead
  // of a FromTuples rebuild. The incremental index (src/incr) uses this to
  // install PATCHED tries — a prior revision's trie plus a small delta —
  // under the key the compilers will look up for the new revision. `build`
  // must produce canonical variables 0..k-1 with the same language a
  // FromTuples rebuild would; store interning then guarantees the patched
  // entry is bit-identical (same canonical id) to a recompiled one.
  Result<TrackAutomaton> CachedTrie(
      const std::string& key, const std::vector<VarId>& vars,
      const std::function<Result<TrackAutomaton>()>& build);

  // Drops every revision-keyed entry ("trie:…:<revision>" — database
  // relations, active-domain and prefix-domain automata) whose revision the
  // predicate reports as dead, refunding its bytes. Revision-free entries
  // (pure atoms, patterns) are content-addressed and never evicted. Returns
  // the number of entries dropped. The serving layer calls this after a
  // snapshot's last pin is released.
  size_t EvictRevisionEntries(const std::function<bool(int64_t)>& is_live);

  Stats stats() const;
  size_t size() const;

 private:
  // Returns the canonical-variable automaton cached under `key`, building
  // it with `build` on a miss (build must produce vars 0..k-1), renamed to
  // `vars`.
  Result<TrackAutomaton> Cached(
      const std::string& key, const std::vector<VarId>& vars,
      const std::function<Result<TrackAutomaton>()>& build);
  static Result<TrackAutomaton> Renamed(const TrackAutomaton& canonical,
                                        const std::vector<VarId>& vars);

  Alphabet alphabet_;
  const AutomatonStore* store_;
  mutable std::mutex mu_;
  std::map<std::string, TrackAutomaton> atoms_;
  std::map<std::pair<std::string, int>, DfaRef> patterns_;
  // Keys currently being built by some thread; guarded by mu_, waited on via
  // inflight_cv_. An entry is removed (and the cv notified) whether the
  // build succeeds or fails.
  std::set<std::string> inflight_atoms_;
  std::set<std::pair<std::string, int>> inflight_patterns_;
  std::condition_variable inflight_cv_;
  Stats stats_;
};

}  // namespace strq

#endif  // STRQ_MTA_ATOM_CACHE_H_
