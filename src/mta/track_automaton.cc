#include "mta/track_automaton.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <string>

#include "automata/nfa.h"
#include "automata/ops.h"
#include "obs/trace.h"

namespace strq {

namespace {

// Hard ceiling on the number of tracks: the convolution alphabet has
// (|Σ|+1)^k letters and the Valid automaton 2^k+1 states, so beyond this the
// construction is hopeless anyway.
constexpr int kMaxTracks = 20;

bool StrictlyIncreasing(const std::vector<VarId>& vars) {
  for (size_t i = 1; i < vars.size(); ++i) {
    if (vars[i - 1] >= vars[i]) return false;
  }
  return true;
}

// The interned Valid(arity) automaton, memoized in the store's computed
// table keyed on (base alphabet size, arity).
Result<DfaRef> ValidRef(const AutomatonStore& store, const ConvAlphabet& conv) {
  OpKey key{AutomatonStore::kOpValidConvolutions, 0, 0,
            {conv.base_size(), conv.arity()}};
  if (std::optional<DfaRef> hit = store.Lookup(key)) return *hit;
  STRQ_ASSIGN_OR_RETURN(Dfa valid, TrackAutomaton::ValidConvolutions(conv));
  DfaRef ref = store.Intern(valid);
  store.Memoize(key, ref);
  return ref;
}

}  // namespace

Result<Dfa> TrackAutomaton::ValidConvolutions(const ConvAlphabet& conv) {
  int k = conv.arity();
  if (k == 0) {
    // Only the empty word is a canonical 0-track convolution.
    return Dfa::Create(conv.num_letters(), 0, {{1}, {1}}, {true, false});
  }
  if (k > kMaxTracks) {
    return ResourceExhaustedError(
        "too many tracks: arity " + std::to_string(k) +
        " exceeds the supported maximum of " + std::to_string(kMaxTracks));
  }
  // States: bitmask of tracks that have started padding, plus a sink. Built
  // by worklist from mask 0 so only reachable masks get rows — the all-pad
  // mask never does: entering it would take an all-pad column, which is
  // exactly what Valid forbids.
  int num_masks = 1 << k;
  int sink = num_masks;
  int num_letters = conv.num_letters();
  if (GetClassKernel() != ClassKernel::kDense) {
    // A column's effect depends only on its pad-mask (which tracks it pads),
    // so the symbol classes are the 2^k pad-masks — against (|Σ|+1)^k
    // letters. Only the letter→mask map touches the dense letter axis; the
    // transition rows are O(2^k · 2^k). Pad-masks first occur in increasing
    // mask order as letters increase (the pad digit is the largest), so the
    // hint is already canonically ordered.
    std::vector<int> letter_class(num_letters);
    for (int letter = 0; letter < num_letters; ++letter) {
      int pm = 0;
      for (int t = 0; t < k; ++t) {
        if (conv.DigitAt(static_cast<Symbol>(letter), t) == conv.pad()) {
          pm |= 1 << t;
        }
      }
      letter_class[letter] = pm;
    }
    std::vector<int> ids(static_cast<size_t>(num_masks) + 1, -1);
    std::vector<int> order;  // dense id -> mask (or sink)
    auto intern = [&](int state) -> int {
      if (ids[state] < 0) {
        ids[state] = static_cast<int>(order.size());
        order.push_back(state);
      }
      return ids[state];
    };
    (void)intern(0);
    std::vector<int> cnext;
    std::vector<bool> accepting;
    for (size_t i = 0; i < order.size(); ++i) {
      int state = order[i];
      accepting.push_back(state != sink);
      for (int pm = 0; pm < num_masks; ++pm) {
        // Valid: tracks already padding must stay padded (state ⊆ pm) and
        // the column must not pad everything.
        bool ok = state != sink && (state & ~pm) == 0 && pm != num_masks - 1;
        cnext.push_back(intern(ok ? (state | pm) : sink));
      }
    }
    return Dfa::CreateCondensed(num_letters, static_cast<int>(order.size()),
                                0, std::move(letter_class), num_masks,
                                std::move(cnext), std::move(accepting));
  }
  std::vector<int> ids(static_cast<size_t>(num_masks) + 1, -1);
  std::vector<int> order;  // dense id -> mask (or sink)
  auto intern = [&](int state) -> int {
    if (ids[state] < 0) {
      ids[state] = static_cast<int>(order.size());
      order.push_back(state);
    }
    return ids[state];
  };
  (void)intern(0);
  std::vector<std::vector<int>> next;
  std::vector<bool> accepting;
  for (size_t i = 0; i < order.size(); ++i) {
    int state = order[i];
    accepting.push_back(state != sink);
    if (state == sink) {
      next.emplace_back(static_cast<size_t>(num_letters),
                        intern(sink));
      continue;
    }
    int mask = state;
    std::vector<int> row(static_cast<size_t>(num_letters));
    for (int letter = 0; letter < num_letters; ++letter) {
      std::vector<int> digits = conv.Decode(static_cast<Symbol>(letter));
      int new_mask = mask;
      bool ok = true;
      bool all_pad = true;
      for (int t = 0; t < k; ++t) {
        bool is_pad = digits[t] == conv.pad();
        if (!is_pad) all_pad = false;
        if (is_pad) {
          new_mask |= 1 << t;
        } else if (mask & (1 << t)) {
          ok = false;  // pad must be a suffix per track
        }
      }
      if (all_pad) ok = false;  // no all-pad columns
      row[letter] = intern(ok ? new_mask : sink);
    }
    next.push_back(std::move(row));
  }
  return Dfa::Create(num_letters, 0, std::move(next), std::move(accepting));
}

Result<TrackAutomaton> TrackAutomaton::Create(const AutomatonStore& store,
                                              const Alphabet& alphabet,
                                              std::vector<VarId> vars,
                                              Dfa dfa) {
  if (!StrictlyIncreasing(vars)) {
    return InvalidArgumentError("track variables must be strictly increasing");
  }
  STRQ_ASSIGN_OR_RETURN(
      ConvAlphabet conv,
      ConvAlphabet::Create(alphabet.size(), static_cast<int>(vars.size())));
  if (dfa.alphabet_size() != conv.num_letters()) {
    return InvalidArgumentError("DFA alphabet does not match convolution");
  }
  DfaRef input = store.Intern(dfa);
  STRQ_ASSIGN_OR_RETURN(DfaRef valid, ValidRef(store, conv));
  STRQ_ASSIGN_OR_RETURN(DfaRef clean, store.Intersect(input, valid));
  obs::Count(obs::kMtaStatesBuilt, clean->num_states());
  obs::Count(obs::kMtaTransitionsBuilt, clean->NumTransitions());
  return TrackAutomaton(alphabet, std::move(vars), conv, std::move(clean),
                        &store);
}

Result<TrackAutomaton> TrackAutomaton::Create(const Alphabet& alphabet,
                                              std::vector<VarId> vars,
                                              Dfa dfa) {
  return Create(AutomatonStore::Default(), alphabet, std::move(vars),
                std::move(dfa));
}

Result<TrackAutomaton> TrackAutomaton::FullRelation(
    const AutomatonStore& store, const Alphabet& alphabet,
    std::vector<VarId> vars) {
  if (!StrictlyIncreasing(vars)) {
    return InvalidArgumentError("track variables must be strictly increasing");
  }
  STRQ_ASSIGN_OR_RETURN(
      ConvAlphabet conv,
      ConvAlphabet::Create(alphabet.size(), static_cast<int>(vars.size())));
  return Create(store, alphabet, std::move(vars),
                Dfa::AllStrings(conv.num_letters()));
}

Result<TrackAutomaton> TrackAutomaton::FullRelation(const Alphabet& alphabet,
                                                    std::vector<VarId> vars) {
  return FullRelation(AutomatonStore::Default(), alphabet, std::move(vars));
}

Result<TrackAutomaton> TrackAutomaton::EmptyRelation(
    const AutomatonStore& store, const Alphabet& alphabet,
    std::vector<VarId> vars) {
  if (!StrictlyIncreasing(vars)) {
    return InvalidArgumentError("track variables must be strictly increasing");
  }
  STRQ_ASSIGN_OR_RETURN(
      ConvAlphabet conv,
      ConvAlphabet::Create(alphabet.size(), static_cast<int>(vars.size())));
  return Create(store, alphabet, std::move(vars),
                Dfa::EmptyLanguage(conv.num_letters()));
}

Result<TrackAutomaton> TrackAutomaton::EmptyRelation(const Alphabet& alphabet,
                                                     std::vector<VarId> vars) {
  return EmptyRelation(AutomatonStore::Default(), alphabet, std::move(vars));
}

Result<TrackAutomaton> TrackAutomaton::Truth(const AutomatonStore& store,
                                             const Alphabet& alphabet,
                                             bool value) {
  if (value) return FullRelation(store, alphabet, {});
  return EmptyRelation(store, alphabet, {});
}

Result<TrackAutomaton> TrackAutomaton::Truth(const Alphabet& alphabet,
                                             bool value) {
  return Truth(AutomatonStore::Default(), alphabet, value);
}

Result<TrackAutomaton> TrackAutomaton::FromTuples(
    const AutomatonStore& store, const Alphabet& alphabet,
    std::vector<VarId> vars,
    const std::vector<std::vector<std::string>>& tuples) {
  if (!StrictlyIncreasing(vars)) {
    return InvalidArgumentError("track variables must be strictly increasing");
  }
  obs::Span span("mta.from_tuples");
  span.Attr("tuples", static_cast<int64_t>(tuples.size()));
  STRQ_ASSIGN_OR_RETURN(
      ConvAlphabet conv,
      ConvAlphabet::Create(alphabet.size(), static_cast<int>(vars.size())));

  // Deterministic trie over convolution columns; node 0 is the root and the
  // final slot is the reject sink.
  struct TrieNode {
    std::map<Symbol, int> children;
    bool accepting = false;
  };
  std::vector<TrieNode> trie(1);
  for (const std::vector<std::string>& tuple : tuples) {
    STRQ_ASSIGN_OR_RETURN(std::vector<Symbol> word,
                          conv.ConvolveStrings(alphabet, tuple));
    int node = 0;
    for (Symbol letter : word) {
      auto it = trie[node].children.find(letter);
      if (it == trie[node].children.end()) {
        trie.push_back(TrieNode{});
        it = trie[node]
                 .children.emplace(letter, static_cast<int>(trie.size()) - 1)
                 .first;
      }
      node = it->second;
    }
    trie[node].accepting = true;
  }

  int sink = static_cast<int>(trie.size());
  int n = sink + 1;
  std::vector<std::vector<int>> next(
      n, std::vector<int>(static_cast<size_t>(conv.num_letters()), sink));
  std::vector<bool> accepting(n, false);
  for (int q = 0; q < sink; ++q) {
    for (const auto& [letter, target] : trie[q].children) {
      next[q][letter] = target;
    }
    accepting[q] = trie[q].accepting;
  }
  STRQ_ASSIGN_OR_RETURN(Dfa dfa, Dfa::Create(conv.num_letters(), 0,
                                             std::move(next),
                                             std::move(accepting)));
  Result<TrackAutomaton> out = Create(store, alphabet, std::move(vars),
                                      std::move(dfa));
  if (out.ok()) span.Attr("out_states", out->NumStates());
  return out;
}

Result<TrackAutomaton> TrackAutomaton::FromTuples(
    const Alphabet& alphabet, std::vector<VarId> vars,
    const std::vector<std::vector<std::string>>& tuples) {
  return FromTuples(AutomatonStore::Default(), alphabet, std::move(vars),
                    tuples);
}

Result<bool> TrackAutomaton::Contains(
    const std::vector<std::string>& tuple) const {
  STRQ_ASSIGN_OR_RETURN(std::vector<Symbol> word,
                        conv_.ConvolveStrings(alphabet_, tuple));
  return dfa_->Accepts(word);
}

Result<TrackAutomaton> TrackAutomaton::Cylindrified(
    std::vector<VarId> new_vars) const {
  if (!StrictlyIncreasing(new_vars)) {
    return InvalidArgumentError("track variables must be strictly increasing");
  }
  obs::Span span("mta.cylindrify");
  span.Attr("in_states", NumStates());
  span.Attr("in_arity", arity());
  span.Attr("out_arity", static_cast<int64_t>(new_vars.size()));
  obs::Count(obs::kMtaCylindrifications);
  // Verify vars() ⊆ new_vars and compute, for each new track, the old track
  // it carries (-1 for fresh tracks).
  std::vector<int> old_track_of(new_vars.size(), -1);
  size_t oi = 0;
  for (size_t ni = 0; ni < new_vars.size(); ++ni) {
    if (oi < vars_.size() && vars_[oi] == new_vars[ni]) {
      old_track_of[ni] = static_cast<int>(oi);
      ++oi;
    }
  }
  if (oi != vars_.size()) {
    return InvalidArgumentError("cylindrification target must contain vars");
  }
  if (new_vars == vars_) return *this;

  STRQ_ASSIGN_OR_RETURN(ConvAlphabet new_conv,
                        ConvAlphabet::Create(alphabet_.size(),
                                             static_cast<int>(new_vars.size())));
  // The result depends only on the input language and the track embedding,
  // not on the variable names.
  OpKey key{AutomatonStore::kOpCylindrify, dfa_.id(), 0,
            {conv_.base_size()}};
  key.params.insert(key.params.end(), old_track_of.begin(),
                    old_track_of.end());
  if (std::optional<DfaRef> hit = store_->Lookup(key)) {
    return TrackAutomaton(alphabet_, std::move(new_vars), new_conv, *hit,
                          store_);
  }

  int letters = new_conv.num_letters();
  int n = dfa_->num_states();
  std::vector<bool> accepting(n);
  for (int q = 0; q < n; ++q) accepting[q] = dfa_->IsAccepting(q);
  std::vector<int> old_digits(vars_.size());
  std::optional<Dfa> cyl;
  if (GetClassKernel() != ClassKernel::kDense) {
    // Cylindrification multiplies class counts, not alphabet sizes: a new
    // letter behaves like the class of the old letter it embeds, except
    // that letters padding every embedded track freeze the state (the old
    // word has ended while fresh tracks continue) and form one extra class
    // with an identity column. Rows are O(n · (C+1)); only the letter→class
    // map is O(letters · k).
    int old_classes = dfa_->num_classes();
    int frozen = old_classes;
    std::vector<int> letter_class(letters);
    for (int letter = 0; letter < letters; ++letter) {
      bool old_all_pad = true;
      for (size_t ni = 0; ni < new_vars.size(); ++ni) {
        if (old_track_of[ni] >= 0) {
          int d = new_conv.DigitAt(static_cast<Symbol>(letter),
                                   static_cast<int>(ni));
          old_digits[old_track_of[ni]] = d;
          if (d != new_conv.pad()) old_all_pad = false;
        }
      }
      if (arity() == 0) old_all_pad = true;
      letter_class[letter] =
          old_all_pad ? frozen : dfa_->LetterClass(conv_.Encode(old_digits));
    }
    std::vector<int> cnext(static_cast<size_t>(n) * (old_classes + 1));
    for (int q = 0; q < n; ++q) {
      int* row = &cnext[static_cast<size_t>(q) * (old_classes + 1)];
      for (int c = 0; c < old_classes; ++c) row[c] = dfa_->NextByClass(q, c);
      row[frozen] = q;
    }
    STRQ_ASSIGN_OR_RETURN(
        Dfa built, Dfa::CreateCondensed(letters, n, dfa_->start(),
                                        std::move(letter_class),
                                        old_classes + 1, std::move(cnext),
                                        std::move(accepting)));
    cyl.emplace(std::move(built));
  } else {
    std::vector<int> next(static_cast<size_t>(n) * letters);
    for (int letter = 0; letter < letters; ++letter) {
      std::vector<int> digits = new_conv.Decode(static_cast<Symbol>(letter));
      bool old_all_pad = true;
      for (size_t ni = 0; ni < new_vars.size(); ++ni) {
        if (old_track_of[ni] >= 0) {
          old_digits[old_track_of[ni]] = digits[ni];
          if (digits[ni] != new_conv.pad()) old_all_pad = false;
        }
      }
      if (arity() == 0) old_all_pad = true;
      if (old_all_pad) {
        // The embedded word has ended; the new tracks may continue, so the
        // old automaton's state is frozen.
        for (int q = 0; q < n; ++q) {
          next[static_cast<size_t>(q) * letters + letter] = q;
        }
      } else {
        Symbol old_letter = conv_.Encode(old_digits);
        for (int q = 0; q < n; ++q) {
          next[static_cast<size_t>(q) * letters + letter] =
              dfa_->Next(q, old_letter);
        }
      }
    }
    STRQ_ASSIGN_OR_RETURN(Dfa built,
                          Dfa::CreateFlat(letters, n, dfa_->start(),
                                          std::move(next),
                                          std::move(accepting)));
    cyl.emplace(std::move(built));
  }
  // Create() intersects with Valid, which restores pad canonicity for the
  // fresh tracks.
  STRQ_ASSIGN_OR_RETURN(TrackAutomaton out,
                        Create(*store_, alphabet_, std::move(new_vars),
                               std::move(*cyl)));
  store_->Memoize(key, out.dfa_);
  return out;
}

namespace {

std::vector<VarId> UnionVars(const std::vector<VarId>& a,
                             const std::vector<VarId>& b) {
  std::vector<VarId> out;
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

}  // namespace

Result<TrackAutomaton> TrackAutomaton::Intersect(const TrackAutomaton& a,
                                                 const TrackAutomaton& b) {
  if (!(a.alphabet_ == b.alphabet_)) {
    return InvalidArgumentError("intersect over different alphabets");
  }
  obs::Span span("mta.intersect");
  span.Attr("a_states", a.NumStates());
  span.Attr("b_states", b.NumStates());
  obs::Count(obs::kMtaIntersections);
  std::vector<VarId> vars = UnionVars(a.vars_, b.vars_);
  STRQ_ASSIGN_OR_RETURN(TrackAutomaton ca, a.Cylindrified(vars));
  STRQ_ASSIGN_OR_RETURN(TrackAutomaton cb, b.Cylindrified(vars));
  // Both operands satisfy L ⊆ Valid, so the intersection does too: no
  // Valid re-intersection needed.
  STRQ_ASSIGN_OR_RETURN(DfaRef product,
                        a.store_->Intersect(ca.dfa_, cb.dfa_));
  TrackAutomaton out(a.alphabet_, std::move(vars), ca.conv_,
                     std::move(product), a.store_);
  obs::Count(obs::kMtaIntermediateStates, out.NumStates());
  span.Attr("out_states", out.NumStates());
  return out;
}

Result<TrackAutomaton> TrackAutomaton::Union(const TrackAutomaton& a,
                                             const TrackAutomaton& b) {
  if (!(a.alphabet_ == b.alphabet_)) {
    return InvalidArgumentError("union over different alphabets");
  }
  obs::Span span("mta.union");
  span.Attr("a_states", a.NumStates());
  span.Attr("b_states", b.NumStates());
  obs::Count(obs::kMtaUnions);
  std::vector<VarId> vars = UnionVars(a.vars_, b.vars_);
  STRQ_ASSIGN_OR_RETURN(TrackAutomaton ca, a.Cylindrified(vars));
  STRQ_ASSIGN_OR_RETURN(TrackAutomaton cb, b.Cylindrified(vars));
  // Valid(arity) is closed under union, so the invariant is preserved.
  STRQ_ASSIGN_OR_RETURN(DfaRef sum, a.store_->Union(ca.dfa_, cb.dfa_));
  TrackAutomaton out(a.alphabet_, std::move(vars), ca.conv_, std::move(sum),
                     a.store_);
  obs::Count(obs::kMtaIntermediateStates, out.NumStates());
  span.Attr("out_states", out.NumStates());
  return out;
}

Result<TrackAutomaton> TrackAutomaton::Difference(const TrackAutomaton& a,
                                                  const TrackAutomaton& b) {
  if (!(a.alphabet_ == b.alphabet_)) {
    return InvalidArgumentError("difference over different alphabets");
  }
  obs::Span span("mta.difference");
  span.Attr("a_states", a.NumStates());
  span.Attr("b_states", b.NumStates());
  obs::Count(obs::kMtaDifferences);
  std::vector<VarId> vars = UnionVars(a.vars_, b.vars_);
  STRQ_ASSIGN_OR_RETURN(TrackAutomaton ca, a.Cylindrified(vars));
  STRQ_ASSIGN_OR_RETURN(TrackAutomaton cb, b.Cylindrified(vars));
  // a ∖ b ⊆ L(a) ⊆ Valid(arity), so the invariant is preserved.
  STRQ_ASSIGN_OR_RETURN(DfaRef diff, a.store_->Difference(ca.dfa_, cb.dfa_));
  TrackAutomaton out(a.alphabet_, std::move(vars), ca.conv_, std::move(diff),
                     a.store_);
  obs::Count(obs::kMtaIntermediateStates, out.NumStates());
  span.Attr("out_states", out.NumStates());
  return out;
}

Result<TrackAutomaton> TrackAutomaton::Complemented() const {
  obs::Span span("mta.complement");
  span.Attr("in_states", NumStates());
  obs::Count(obs::kMtaComplements);
  // The complement relative to the full relation is Valid \ L, which the
  // store memoizes as a difference on interned handles.
  STRQ_ASSIGN_OR_RETURN(DfaRef valid, ValidRef(*store_, conv_));
  STRQ_ASSIGN_OR_RETURN(DfaRef diff, store_->Difference(valid, dfa_));
  TrackAutomaton out(alphabet_, vars_, conv_, std::move(diff), store_);
  obs::Count(obs::kMtaIntermediateStates, out.NumStates());
  span.Attr("out_states", out.NumStates());
  return out;
}

Result<TrackAutomaton> TrackAutomaton::Project(VarId var) const {
  auto it = std::find(vars_.begin(), vars_.end(), var);
  if (it == vars_.end()) {
    return InvalidArgumentError("projected variable not present");
  }
  obs::Span span("mta.project");
  span.Attr("in_states", NumStates());
  obs::Count(obs::kMtaProjections);
  int track = static_cast<int>(it - vars_.begin());
  std::vector<VarId> new_vars = vars_;
  new_vars.erase(new_vars.begin() + track);
  STRQ_ASSIGN_OR_RETURN(ConvAlphabet new_conv,
                        ConvAlphabet::Create(alphabet_.size(),
                                             static_cast<int>(new_vars.size())));

  OpKey key{AutomatonStore::kOpProject, dfa_.id(), 0,
            {conv_.base_size(), arity(), track}};
  if (std::optional<DfaRef> hit = store_->Lookup(key)) {
    TrackAutomaton out(alphabet_, std::move(new_vars), new_conv, *hit,
                       store_);
    obs::Count(obs::kMtaIntermediateStates, out.NumStates());
    span.Attr("out_states", out.NumStates());
    return out;
  }

  int n = dfa_->num_states();

  // New accepting states: states from which the old automaton can accept by
  // reading only columns that are pad on every remaining track (the
  // projected variable's word may outlast all others). Such columns have a
  // non-pad digit on `track` only.
  std::vector<bool> can_finish(n, false);
  {
    // Reverse edges restricted to tail columns.
    std::vector<std::vector<int>> rev(n);
    for (int q = 0; q < n; ++q) {
      for (int d = 0; d < conv_.base_size(); ++d) {
        std::vector<int> digits(vars_.size(), conv_.pad());
        digits[track] = d;
        int t = dfa_->Next(q, conv_.Encode(digits));
        rev[t].push_back(q);
      }
    }
    std::deque<int> queue;
    for (int q = 0; q < n; ++q) {
      if (dfa_->IsAccepting(q)) {
        can_finish[q] = true;
        queue.push_back(q);
      }
    }
    while (!queue.empty()) {
      int q = queue.front();
      queue.pop_front();
      for (int p : rev[q]) {
        if (!can_finish[p]) {
          can_finish[p] = true;
          queue.push_back(p);
        }
      }
    }
  }

  std::optional<Dfa> det;
  if (GetClassKernel() != ClassKernel::kDense) {
    // Class-aware projection: the subset construction guesses the projected
    // track's digit, so a reduced letter's behavior is determined by the
    // signature of original classes over its |Σ|+1 possible digit
    // insertions. Reduced letters are grouped by that signature — the
    // dense reduced alphabet is only touched to build the map — and the
    // all-pad reduced letter (a tail column, handled by can_finish) forms
    // its own transition-less class.
    int red_letters = new_conv.num_letters();
    int digits_per_track = conv_.base_size() + 1;
    int stride = conv_.TrackStride(track);
    int stride_up = conv_.TrackStride(track + 1);
    // Inserts digit d at position `track` of a reduced letter.
    auto insert_digit = [&](int r, int d) -> Symbol {
      return static_cast<Symbol>(r % stride + d * stride +
                                 (r / stride) * stride_up);
    };
    std::map<std::vector<int>, int> sig_ids;
    std::vector<int> letter_class(red_letters);
    std::vector<Symbol> class_rep;  // signature class -> reduced letter
    for (int r = 0; r < red_letters - 1; ++r) {
      std::vector<int> sig(digits_per_track);
      for (int d = 0; d < digits_per_track; ++d) {
        sig[d] = dfa_->LetterClass(insert_digit(r, d));
      }
      auto [it, inserted] =
          sig_ids.emplace(std::move(sig), static_cast<int>(class_rep.size()));
      if (inserted) class_rep.push_back(static_cast<Symbol>(r));
      letter_class[r] = it->second;
    }
    // The last reduced letter pads every remaining track.
    int all_pad_class = static_cast<int>(class_rep.size());
    letter_class[red_letters - 1] = all_pad_class;
    int num_classes = all_pad_class + 1;
    std::vector<std::vector<std::vector<int>>> targets(
        n, std::vector<std::vector<int>>(num_classes));
    for (int q = 0; q < n; ++q) {
      for (int c = 0; c < all_pad_class; ++c) {
        std::vector<int>& ts = targets[q][c];
        ts.reserve(digits_per_track);
        for (int d = 0; d < digits_per_track; ++d) {
          ts.push_back(dfa_->Next(q, insert_digit(class_rep[c], d)));
        }
      }
    }
    STRQ_ASSIGN_OR_RETURN(
        Dfa built,
        DeterminizeClassed(red_letters, letter_class, num_classes,
                           dfa_->start(), can_finish, targets));
    det.emplace(std::move(built));
  } else {
    // NFA over the reduced convolution: guess the projected track's digit.
    Nfa nfa(new_conv.num_letters());
    for (int q = 0; q < n; ++q) {
      nfa.AddState();
      nfa.SetAccepting(q, can_finish[q]);
    }
    nfa.SetStart(dfa_->start());
    for (int q = 0; q < n; ++q) {
      for (int letter = 0; letter < conv_.num_letters(); ++letter) {
        std::vector<int> digits = conv_.Decode(static_cast<Symbol>(letter));
        // Skip tail columns (handled by can_finish) and all-pad columns.
        bool rest_all_pad = true;
        for (size_t t = 0; t < digits.size(); ++t) {
          if (static_cast<int>(t) != track && digits[t] != conv_.pad()) {
            rest_all_pad = false;
            break;
          }
        }
        if (rest_all_pad) continue;
        digits.erase(digits.begin() + track);
        Symbol new_letter = new_conv.Encode(digits);
        nfa.AddTransition(q, new_letter,
                          dfa_->Next(q, static_cast<Symbol>(letter)));
      }
    }
    STRQ_ASSIGN_OR_RETURN(Dfa built, Determinize(nfa));
    det.emplace(std::move(built));
  }
  STRQ_ASSIGN_OR_RETURN(TrackAutomaton out,
                        Create(*store_, alphabet_, std::move(new_vars),
                               std::move(*det)));
  store_->Memoize(key, out.dfa_);
  obs::Count(obs::kMtaIntermediateStates, out.NumStates());
  span.Attr("out_states", out.NumStates());
  return out;
}

Result<TrackAutomaton> TrackAutomaton::Renamed(
    const std::map<VarId, VarId>& renaming) const {
  obs::Span span("mta.rename");
  span.Attr("in_states", NumStates());
  obs::Count(obs::kMtaRenamings);
  std::vector<VarId> renamed(vars_.size());
  for (size_t i = 0; i < vars_.size(); ++i) {
    auto it = renaming.find(vars_[i]);
    renamed[i] = it == renaming.end() ? vars_[i] : it->second;
  }
  // The renaming must stay injective on our variables.
  std::vector<VarId> sorted = renamed;
  std::sort(sorted.begin(), sorted.end());
  if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
    return InvalidArgumentError("renaming collapses two tracks");
  }
  // Track permutation: new track position ni carries old track perm[ni].
  std::vector<int> perm(vars_.size());
  bool identity = true;
  for (size_t ni = 0; ni < sorted.size(); ++ni) {
    auto it = std::find(renamed.begin(), renamed.end(), sorted[ni]);
    perm[ni] = static_cast<int>(it - renamed.begin());
    identity = identity && perm[ni] == static_cast<int>(ni);
  }
  // Order-preserving renamings only change variable labels; the convolution
  // DFA is untouched and the interned handle is reused as-is.
  if (identity) {
    return TrackAutomaton(alphabet_, std::move(sorted), conv_, dfa_, store_);
  }

  OpKey key{AutomatonStore::kOpPermute, dfa_.id(), 0, {conv_.base_size()}};
  key.params.insert(key.params.end(), perm.begin(), perm.end());
  if (std::optional<DfaRef> hit = store_->Lookup(key)) {
    return TrackAutomaton(alphabet_, std::move(sorted), conv_, *hit, store_);
  }

  int letters = conv_.num_letters();
  int n = dfa_->num_states();
  std::vector<bool> accepting(n);
  for (int q = 0; q < n; ++q) accepting[q] = dfa_->IsAccepting(q);
  std::vector<int> old_digits(vars_.size());
  std::optional<Dfa> permuted;
  if (GetClassKernel() != ClassKernel::kDense) {
    // A track permutation only permutes letters; transition columns are
    // untouched, so the condensed table is reused as-is with the composed
    // letter→class map as hint. O(letters · k + n · C) instead of
    // O(letters · (k + n)).
    int num_classes = dfa_->num_classes();
    std::vector<int> letter_class(letters);
    for (int letter = 0; letter < letters; ++letter) {
      std::vector<int> digits = conv_.Decode(static_cast<Symbol>(letter));
      for (size_t ni = 0; ni < perm.size(); ++ni) {
        old_digits[perm[ni]] = digits[ni];
      }
      letter_class[letter] = dfa_->LetterClass(conv_.Encode(old_digits));
    }
    std::vector<int> cnext(static_cast<size_t>(n) * num_classes);
    for (int q = 0; q < n; ++q) {
      for (int c = 0; c < num_classes; ++c) {
        cnext[static_cast<size_t>(q) * num_classes + c] =
            dfa_->NextByClass(q, c);
      }
    }
    STRQ_ASSIGN_OR_RETURN(
        Dfa built, Dfa::CreateCondensed(letters, n, dfa_->start(),
                                        std::move(letter_class), num_classes,
                                        std::move(cnext),
                                        std::move(accepting)));
    permuted.emplace(std::move(built));
  } else {
    std::vector<int> next(static_cast<size_t>(n) * letters);
    for (int letter = 0; letter < letters; ++letter) {
      std::vector<int> digits = conv_.Decode(static_cast<Symbol>(letter));
      for (size_t ni = 0; ni < perm.size(); ++ni) {
        old_digits[perm[ni]] = digits[ni];
      }
      Symbol old_letter = conv_.Encode(old_digits);
      for (int q = 0; q < n; ++q) {
        next[static_cast<size_t>(q) * letters + letter] =
            dfa_->Next(q, old_letter);
      }
    }
    STRQ_ASSIGN_OR_RETURN(Dfa built,
                          Dfa::CreateFlat(letters, n, dfa_->start(),
                                          std::move(next),
                                          std::move(accepting)));
    permuted.emplace(std::move(built));
  }
  STRQ_ASSIGN_OR_RETURN(TrackAutomaton out,
                        Create(*store_, alphabet_, std::move(sorted),
                               std::move(*permuted)));
  store_->Memoize(key, out.dfa_);
  return out;
}

Result<bool> TrackAutomaton::TruthValue() const {
  if (arity() != 0) {
    return InvalidArgumentError("TruthValue on a non-sentence relation");
  }
  return dfa_->Accepts({});
}

std::vector<std::vector<std::string>> TrackAutomaton::EnumerateTuples(
    int max_len, size_t max_count) const {
  std::vector<std::vector<std::string>> out;
  for (const std::vector<Symbol>& word : dfa_->Enumerate(max_len, max_count)) {
    out.push_back(conv_.DeconvolveStrings(alphabet_, word));
  }
  return out;
}

Result<Dfa> TrackAutomaton::UnaryLanguage() const {
  if (arity() != 1) {
    return InvalidArgumentError("UnaryLanguage needs an arity-1 relation");
  }
  int m = alphabet_.size();
  // Convolution letters 0..m-1 are exactly the base symbols; letter m (the
  // pad) never occurs in canonical unary convolutions, so dropping its
  // column preserves the language.
  int n = dfa_->num_states();
  std::vector<std::vector<int>> next(n, std::vector<int>(m));
  std::vector<bool> accepting(n);
  for (int q = 0; q < n; ++q) {
    for (int s = 0; s < m; ++s) {
      next[q][s] = dfa_->Next(q, static_cast<Symbol>(s));
    }
    accepting[q] = dfa_->IsAccepting(q);
  }
  STRQ_ASSIGN_OR_RETURN(
      Dfa out, Dfa::Create(m, dfa_->start(), std::move(next),
                           std::move(accepting)));
  return out.Minimized();
}

Result<std::vector<std::vector<std::string>>> TrackAutomaton::AllTuples(
    size_t max_count) const {
  std::optional<int> max_len = dfa_->MaxAcceptedLength();
  if (!max_len.has_value()) {
    return UnsafeError("relation is infinite; cannot enumerate all tuples");
  }
  if (*max_len < 0) return std::vector<std::vector<std::string>>{};
  std::vector<std::vector<std::string>> out =
      EnumerateTuples(*max_len, max_count + 1);
  if (out.size() > max_count) {
    return ResourceExhaustedError("finite relation larger than budget");
  }
  return out;
}

}  // namespace strq
