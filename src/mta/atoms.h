#ifndef STRQ_MTA_ATOMS_H_
#define STRQ_MTA_ATOMS_H_

#include <string>

#include "automata/dfa.h"
#include "base/alphabet.h"
#include "base/status.h"
#include "mta/track_automaton.h"

namespace strq {

// Builders for the atomic predicates of the paper's structures, each as a
// TrackAutomaton over the given variables. All are "automatic" relations:
// a constant-size (or |L|-size) synchronous automaton recognizes the padded
// convolution of satisfying tuples. Binary/ternary builders require the
// variables to be pairwise distinct — the formula compiler freshens repeated
// variables before calling in here.
//
// Structure membership (Figure 2 of the paper):
//   S      : Equal, Prefix, StrictPrefix, OneStep, LastSymbol, Append (l_a),
//            Const, LexLeq, Lcp, plus P_L for star-free L
//   S_left : S plus Prepend (f_a) and TrimLeading
//   S_reg  : S plus SuffixIn (P_L) for arbitrary regular L, Member
//   S_len  : S plus EqLen, LeqLen (and everything above is definable)

// x = y.
Result<TrackAutomaton> EqualAtom(const Alphabet& alphabet, VarId x, VarId y);

// x ≼ y (x is a prefix of y).
Result<TrackAutomaton> PrefixAtom(const Alphabet& alphabet, VarId x, VarId y);

// x ≺ y (strict prefix).
Result<TrackAutomaton> StrictPrefixAtom(const Alphabet& alphabet, VarId x,
                                        VarId y);

// x < y in one step: y = x·b for some b ∈ Σ.
Result<TrackAutomaton> OneStepAtom(const Alphabet& alphabet, VarId x, VarId y);

// L_a(x): the last symbol of x is a.
Result<TrackAutomaton> LastSymbolAtom(const Alphabet& alphabet, char a,
                                      VarId x);

// y = l_a(x) = x·a.
Result<TrackAutomaton> AppendGraphAtom(const Alphabet& alphabet, char a,
                                       VarId x, VarId y);

// y = f_a(x) = a·x (the relation F_a; not definable over S, Section 7).
Result<TrackAutomaton> PrependGraphAtom(const Alphabet& alphabet, char a,
                                        VarId x, VarId y);

// y = x − a = TRIM_a(x): x' if x = a·x', else ε (Section 7).
Result<TrackAutomaton> TrimLeadingGraphAtom(const Alphabet& alphabet, char a,
                                            VarId x, VarId y);

// The Conclusion's proposed extension: insertion at a position named by a
// prefix. insert_a(p, x) = p · a · (x − p) when p ≼ x (and ε otherwise, by
// convention, mirroring TRIM). The relation {(p, x, y) : y = insert_a(p, x)}
// is automatic: after the shared prefix, y emits `a` while x pauses one
// column, then y replays x with a one-symbol delay.
Result<TrackAutomaton> InsertGraphAtom(const Alphabet& alphabet, char a,
                                       VarId p, VarId x, VarId y);

// x = w for a fixed string w.
Result<TrackAutomaton> ConstAtom(const Alphabet& alphabet,
                                 const std::string& w, VarId x);

// el(x, y): |x| = |y| (the predicate that upgrades S to S_len).
Result<TrackAutomaton> EqLenAtom(const Alphabet& alphabet, VarId x, VarId y);

// |x| <= |y| (definable over S_len; provided directly for efficiency).
Result<TrackAutomaton> LeqLenAtom(const Alphabet& alphabet, VarId x, VarId y);

// x ≤_lex y: the lexicographic order of Section 4, where the symbol order is
// the alphabet order.
Result<TrackAutomaton> LexLeqAtom(const Alphabet& alphabet, VarId x, VarId y);

// z = x ∩ y (longest common prefix).
Result<TrackAutomaton> LcpAtom(const Alphabet& alphabet, VarId x, VarId y,
                               VarId z);

// |x| <= max_len: the finite "length window" used to desugar the
// length-restricted quantifiers of Theorem 2.
Result<TrackAutomaton> MaxLenAtom(const Alphabet& alphabet, int max_len,
                                  VarId x);

// x ∈ L for a regular language given as a DFA over `alphabet`.
Result<TrackAutomaton> MemberAtom(const Alphabet& alphabet, const Dfa& lang,
                                  VarId x);

// P_L(x, y): x ≼ y and y − x ∈ L (the predicates that define S_reg,
// Section 7; for star-free L they are already definable over S).
Result<TrackAutomaton> SuffixInAtom(const Alphabet& alphabet, const Dfa& lang,
                                    VarId x, VarId y);

}  // namespace strq

#endif  // STRQ_MTA_ATOMS_H_
