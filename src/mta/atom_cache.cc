#include "mta/atom_cache.h"

#include <utility>

#include "automata/levenshtein.h"
#include "automata/like.h"
#include "automata/regex.h"
#include "mta/atoms.h"
#include "obs/trace.h"

namespace strq {

namespace {

// Fixed per-entry charge for the map node + the cached handle/track
// metadata; the variable part is the key string. The DFA tables behind a
// cached atom belong to (and are accounted by) the AutomatonStore.
constexpr int64_t kAtomEntryBytes = 96;
constexpr int64_t kPatternEntryBytes = 64;

}  // namespace

AtomCache::AtomCache(Alphabet alphabet, const AutomatonStore* store)
    : alphabet_(std::move(alphabet)),
      store_(store != nullptr ? store : &AutomatonStore::Default()) {}

AtomCache::~AtomCache() {
  obs::MemAdd(obs::MemCategory::kAtomCache, -stats_.bytes);
}

Result<TrackAutomaton> AtomCache::Renamed(const TrackAutomaton& canonical,
                                          const std::vector<VarId>& vars) {
  std::map<VarId, VarId> renaming;
  for (int i = 0; i < static_cast<int>(vars.size()); ++i) {
    if (vars[i] != i) renaming[i] = vars[i];
  }
  if (renaming.empty()) return canonical;
  return canonical.Renamed(renaming);
}

Result<TrackAutomaton> AtomCache::Cached(
    const std::string& key, const std::vector<VarId>& vars,
    const std::function<Result<TrackAutomaton>()>& build) {
  // Single-flight claim: hit → done; someone else building → wait and
  // re-check; true miss → claim the key and build it ourselves.
  {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      auto it = atoms_.find(key);
      if (it != atoms_.end()) {
        ++stats_.hits;
        obs::Count(obs::kAtomCacheHits);
        return Renamed(it->second, vars);
      }
      if (inflight_atoms_.insert(key).second) break;
      ++stats_.singleflight_waits;
      obs::Count(obs::kAtomCacheSingleflightWaits);
      inflight_cv_.wait(lock);
    }
  }
  Result<TrackAutomaton> canonical = build();
  // Re-home the atom into this cache's store so every downstream operation
  // on it (and on its renamings) memoizes in one computed table. When the
  // builder already used our store this is a no-op.
  if (canonical.ok() && &canonical->store() != store_) {
    TrackAutomaton built = *std::move(canonical);
    canonical = TrackAutomaton::Create(*store_, built.alphabet(), built.vars(),
                                       built.dfa());
  }
  std::lock_guard<std::mutex> lock(mu_);
  // Release the claim whether we succeeded or not; on failure a waiter wakes,
  // sees no entry and no claim, and retries the build itself (a deadline
  // abort on this thread must not poison the key for an unbudgeted caller).
  inflight_atoms_.erase(key);
  inflight_cv_.notify_all();
  STRQ_RETURN_IF_ERROR(canonical.status());
  ++stats_.misses;
  obs::Count(obs::kAtomCacheMisses);
  auto [it, inserted] = atoms_.emplace(key, *canonical);
  if (inserted) {
    int64_t bytes = kAtomEntryBytes + static_cast<int64_t>(key.size());
    stats_.bytes += bytes;
    obs::MemAdd(obs::MemCategory::kAtomCache, bytes);
  }
  return Renamed(it->second, vars);
}

Result<TrackAutomaton> AtomCache::Equal(VarId x, VarId y) {
  return Cached("eq", {x, y},
                [this] { return EqualAtom(alphabet_, 0, 1); });
}

Result<TrackAutomaton> AtomCache::Prefix(VarId x, VarId y) {
  return Cached("prefix", {x, y},
                [this] { return PrefixAtom(alphabet_, 0, 1); });
}

Result<TrackAutomaton> AtomCache::StrictPrefix(VarId x, VarId y) {
  return Cached("sprefix", {x, y},
                [this] { return StrictPrefixAtom(alphabet_, 0, 1); });
}

Result<TrackAutomaton> AtomCache::OneStep(VarId x, VarId y) {
  return Cached("onestep", {x, y},
                [this] { return OneStepAtom(alphabet_, 0, 1); });
}

Result<TrackAutomaton> AtomCache::LastSymbol(char a, VarId x) {
  return Cached(std::string("last:") + a, {x},
                [this, a] { return LastSymbolAtom(alphabet_, a, 0); });
}

Result<TrackAutomaton> AtomCache::AppendGraph(char a, VarId x, VarId y) {
  return Cached(std::string("append:") + a, {x, y},
                [this, a] { return AppendGraphAtom(alphabet_, a, 0, 1); });
}

Result<TrackAutomaton> AtomCache::PrependGraph(char a, VarId x, VarId y) {
  return Cached(std::string("prepend:") + a, {x, y},
                [this, a] { return PrependGraphAtom(alphabet_, a, 0, 1); });
}

Result<TrackAutomaton> AtomCache::TrimLeadingGraph(char a, VarId x, VarId y) {
  return Cached(std::string("trim:") + a, {x, y},
                [this, a] { return TrimLeadingGraphAtom(alphabet_, a, 0, 1); });
}

Result<TrackAutomaton> AtomCache::InsertGraph(char a, VarId p, VarId x,
                                              VarId y) {
  return Cached(std::string("insert:") + a, {p, x, y}, [this, a] {
    return InsertGraphAtom(alphabet_, a, 0, 1, 2);
  });
}

Result<TrackAutomaton> AtomCache::Const(const std::string& w, VarId x) {
  return Cached("const:" + w, {x},
                [this, &w] { return ConstAtom(alphabet_, w, 0); });
}

Result<TrackAutomaton> AtomCache::EqLen(VarId x, VarId y) {
  return Cached("eqlen", {x, y},
                [this] { return EqLenAtom(alphabet_, 0, 1); });
}

Result<TrackAutomaton> AtomCache::LeqLen(VarId x, VarId y) {
  return Cached("leqlen", {x, y},
                [this] { return LeqLenAtom(alphabet_, 0, 1); });
}

Result<TrackAutomaton> AtomCache::LexLeq(VarId x, VarId y) {
  return Cached("lexleq", {x, y},
                [this] { return LexLeqAtom(alphabet_, 0, 1); });
}

Result<TrackAutomaton> AtomCache::Lcp(VarId x, VarId y, VarId z) {
  return Cached("lcp", {x, y, z},
                [this] { return LcpAtom(alphabet_, 0, 1, 2); });
}

Result<TrackAutomaton> AtomCache::MaxLen(int max_len, VarId x) {
  return Cached("maxlen:" + std::to_string(max_len), {x}, [this, max_len] {
    return MaxLenAtom(alphabet_, max_len, 0);
  });
}

Result<TrackAutomaton> AtomCache::Member(const DfaRef& lang, VarId x) {
  if (!lang) return InvalidArgumentError("null language handle");
  return Cached("member:" + std::to_string(lang.id()), {x},
                [this, &lang] { return MemberAtom(alphabet_, *lang, 0); });
}

Result<TrackAutomaton> AtomCache::SuffixIn(const DfaRef& lang, VarId x,
                                           VarId y) {
  if (!lang) return InvalidArgumentError("null language handle");
  return Cached("suffixin:" + std::to_string(lang.id()), {x, y},
                [this, &lang] { return SuffixInAtom(alphabet_, *lang, 0, 1); });
}

Result<DfaRef> AtomCache::CompiledPattern(const std::string& pattern,
                                          PatternSyntax syntax) {
  std::pair<std::string, int> key(pattern, static_cast<int>(syntax));
  {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      auto it = patterns_.find(key);
      if (it != patterns_.end()) {
        ++stats_.pattern_hits;
        obs::Count(obs::kPatternCacheHits);
        return it->second;
      }
      if (inflight_patterns_.insert(key).second) break;
      ++stats_.singleflight_waits;
      obs::Count(obs::kAtomCacheSingleflightWaits);
      inflight_cv_.wait(lock);
    }
  }
  obs::Span span("compile.pattern");
  if (span.active()) span.set_detail(pattern);
  Result<Dfa> lang = InternalError("unset");
  switch (syntax) {
    case PatternSyntax::kLikePattern:
      lang = CompileLike(pattern, alphabet_);
      break;
    case PatternSyntax::kRegex:
      lang = CompileRegex(pattern, alphabet_);
      break;
    case PatternSyntax::kSimilar:
      lang = CompileSimilar(pattern, alphabet_);
      break;
  }
  if (!lang.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    inflight_patterns_.erase(key);
    inflight_cv_.notify_all();
    return lang.status();
  }
  DfaRef ref = store_->Intern(*lang);
  if (span.active()) span.Attr("states", ref->num_states());
  std::lock_guard<std::mutex> lock(mu_);
  inflight_patterns_.erase(key);
  inflight_cv_.notify_all();
  ++stats_.pattern_misses;
  obs::Count(obs::kPatternCacheMisses);
  auto [it, inserted] = patterns_.emplace(key, ref);
  if (inserted) {
    int64_t bytes = kPatternEntryBytes + static_cast<int64_t>(pattern.size());
    stats_.bytes += bytes;
    obs::MemAdd(obs::MemCategory::kAtomCache, bytes);
  }
  return it->second;
}

Result<DfaRef> AtomCache::CompiledNear(const std::string& word,
                                       int max_edits) {
  // Shares the pattern cache; the synthetic "syntax" discriminant 1000+k
  // can never collide with a PatternSyntax value.
  std::pair<std::string, int> key(word, 1000 + max_edits);
  {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      auto it = patterns_.find(key);
      if (it != patterns_.end()) {
        ++stats_.pattern_hits;
        obs::Count(obs::kPatternCacheHits);
        return it->second;
      }
      if (inflight_patterns_.insert(key).second) break;
      ++stats_.singleflight_waits;
      obs::Count(obs::kAtomCacheSingleflightWaits);
      inflight_cv_.wait(lock);
    }
  }
  obs::Span span("compile.near");
  if (span.active()) {
    span.set_detail("~" + std::to_string(max_edits) + " '" + word + "'");
  }
  Result<Dfa> lang = LevenshteinDfa(alphabet_, word, max_edits);
  if (!lang.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    inflight_patterns_.erase(key);
    inflight_cv_.notify_all();
    return lang.status();
  }
  DfaRef ref = store_->Intern(*lang);
  if (span.active()) span.Attr("states", ref->num_states());
  std::lock_guard<std::mutex> lock(mu_);
  inflight_patterns_.erase(key);
  inflight_cv_.notify_all();
  ++stats_.pattern_misses;
  obs::Count(obs::kPatternCacheMisses);
  auto [it, inserted] = patterns_.emplace(key, ref);
  if (inserted) {
    int64_t bytes = kPatternEntryBytes + static_cast<int64_t>(word.size());
    stats_.bytes += bytes;
    obs::MemAdd(obs::MemCategory::kAtomCache, bytes);
  }
  return it->second;
}

std::optional<DfaRef> AtomCache::PeekPattern(const std::string& pattern,
                                             PatternSyntax syntax) const {
  std::pair<std::string, int> key(pattern, static_cast<int>(syntax));
  std::lock_guard<std::mutex> lock(mu_);
  auto it = patterns_.find(key);
  if (it == patterns_.end()) return std::nullopt;
  return it->second;
}

Result<TrackAutomaton> AtomCache::TableTrie(
    const std::string& key, const std::vector<VarId>& vars,
    const std::function<std::vector<std::vector<std::string>>()>& tuples) {
  std::vector<VarId> canonical(vars.size());
  for (int i = 0; i < static_cast<int>(vars.size()); ++i) canonical[i] = i;
  return Cached("trie:" + key, vars, [this, &canonical, &tuples] {
    return TrackAutomaton::FromTuples(*store_, alphabet_, canonical, tuples());
  });
}

Result<TrackAutomaton> AtomCache::CachedTrie(
    const std::string& key, const std::vector<VarId>& vars,
    const std::function<Result<TrackAutomaton>()>& build) {
  return Cached("trie:" + key, vars, build);
}

namespace {

// Revision-keyed cache entries look like "trie:<kind>…:<revision>"; the
// revision is the decimal suffix after the last ':'. Returns false for keys
// with no parseable revision (pure atoms, "const:…" literals, etc.).
bool TrieRevisionOf(const std::string& key, int64_t* rev) {
  if (key.compare(0, 5, "trie:") != 0) return false;
  size_t colon = key.rfind(':');
  if (colon == std::string::npos || colon + 1 >= key.size()) return false;
  int64_t value = 0;
  for (size_t i = colon + 1; i < key.size(); ++i) {
    char c = key[i];
    if (c < '0' || c > '9') return false;
    value = value * 10 + (c - '0');
  }
  *rev = value;
  return true;
}

}  // namespace

size_t AtomCache::EvictRevisionEntries(
    const std::function<bool(int64_t)>& is_live) {
  size_t evicted = 0;
  int64_t released = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = atoms_.begin(); it != atoms_.end();) {
      int64_t rev = 0;
      if (TrieRevisionOf(it->first, &rev) && !is_live(rev)) {
        released += kAtomEntryBytes + static_cast<int64_t>(it->first.size());
        it = atoms_.erase(it);
        ++evicted;
      } else {
        ++it;
      }
    }
    stats_.bytes -= released;
    stats_.evictions += static_cast<int64_t>(evicted);
  }
  if (released != 0) obs::MemAdd(obs::MemCategory::kAtomCache, -released);
  if (evicted != 0) {
    obs::Count(obs::kAtomCacheEvictions, static_cast<int64_t>(evicted));
  }
  return evicted;
}

AtomCache::Stats AtomCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t AtomCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return atoms_.size() + patterns_.size();
}

}  // namespace strq
