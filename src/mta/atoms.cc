#include "mta/atoms.h"

#include <functional>
#include <utility>
#include <vector>

namespace strq {

namespace {

// Shared skeleton: builds a DFA over the convolution alphabet of `arity`
// tracks from a per-column step function, wraps it in a TrackAutomaton with
// canonical temporary variables 0..arity-1, then renames to the caller's
// variables (Renamed permutes tracks into sorted order).
//
// The step function receives (state, digits) with digits[t] in {0..|Σ|}
// (pad = |Σ|) and returns the successor state. Valid-convolution pruning is
// applied by TrackAutomaton::Create, so step functions only encode the
// predicate itself.
Result<TrackAutomaton> BuildAtom(
    const Alphabet& alphabet, const std::vector<VarId>& vars, int num_states,
    int start, const std::vector<bool>& accepting,
    const std::function<int(int, const std::vector<int>&)>& step) {
  int arity = static_cast<int>(vars.size());
  // Reject repeated variables: the track model needs one track per variable.
  for (size_t i = 0; i < vars.size(); ++i) {
    for (size_t j = i + 1; j < vars.size(); ++j) {
      if (vars[i] == vars[j]) {
        return InvalidArgumentError("atom variables must be distinct");
      }
    }
  }
  STRQ_ASSIGN_OR_RETURN(ConvAlphabet conv,
                        ConvAlphabet::Create(alphabet.size(), arity));
  std::vector<std::vector<int>> next(
      num_states, std::vector<int>(static_cast<size_t>(conv.num_letters())));
  for (int letter = 0; letter < conv.num_letters(); ++letter) {
    std::vector<int> digits = conv.Decode(static_cast<Symbol>(letter));
    for (int q = 0; q < num_states; ++q) {
      next[q][letter] = step(q, digits);
    }
  }
  STRQ_ASSIGN_OR_RETURN(Dfa dfa, Dfa::Create(conv.num_letters(), start,
                                             std::move(next), accepting));
  std::vector<VarId> canonical(arity);
  for (int i = 0; i < arity; ++i) canonical[i] = i;
  STRQ_ASSIGN_OR_RETURN(TrackAutomaton atom,
                        TrackAutomaton::Create(alphabet, canonical,
                                               std::move(dfa)));
  std::map<VarId, VarId> renaming;
  for (int i = 0; i < arity; ++i) renaming[i] = vars[i];
  return atom.Renamed(renaming);
}

}  // namespace

Result<TrackAutomaton> EqualAtom(const Alphabet& alphabet, VarId x, VarId y) {
  int pad = alphabet.size();
  // 0 = equal so far (accepting), 1 = dead.
  return BuildAtom(alphabet, {x, y}, 2, 0, {true, false},
                   [pad](int q, const std::vector<int>& d) {
                     if (q != 0) return 1;
                     return (d[0] == d[1] && d[0] != pad) ? 0 : 1;
                   });
}

Result<TrackAutomaton> PrefixAtom(const Alphabet& alphabet, VarId x, VarId y) {
  int pad = alphabet.size();
  // 0 = matching (accepting: x = y so far), 1 = x done / y continues
  // (accepting), 2 = dead.
  return BuildAtom(alphabet, {x, y}, 3, 0, {true, true, false},
                   [pad](int q, const std::vector<int>& d) {
                     switch (q) {
                       case 0:
                         if (d[0] == d[1] && d[0] != pad) return 0;
                         if (d[0] == pad && d[1] != pad) return 1;
                         return 2;
                       case 1:
                         return (d[0] == pad && d[1] != pad) ? 1 : 2;
                       default:
                         return 2;
                     }
                   });
}

Result<TrackAutomaton> StrictPrefixAtom(const Alphabet& alphabet, VarId x,
                                        VarId y) {
  int pad = alphabet.size();
  // Same machine as PrefixAtom but only the "x done" phase accepts.
  return BuildAtom(alphabet, {x, y}, 3, 0, {false, true, false},
                   [pad](int q, const std::vector<int>& d) {
                     switch (q) {
                       case 0:
                         if (d[0] == d[1] && d[0] != pad) return 0;
                         if (d[0] == pad && d[1] != pad) return 1;
                         return 2;
                       case 1:
                         return (d[0] == pad && d[1] != pad) ? 1 : 2;
                       default:
                         return 2;
                     }
                   });
}

Result<TrackAutomaton> OneStepAtom(const Alphabet& alphabet, VarId x,
                                   VarId y) {
  int pad = alphabet.size();
  // 0 = matching, 1 = y took its single extra symbol (accepting), 2 = dead.
  return BuildAtom(alphabet, {x, y}, 3, 0, {false, true, false},
                   [pad](int q, const std::vector<int>& d) {
                     if (q == 0) {
                       if (d[0] == d[1] && d[0] != pad) return 0;
                       if (d[0] == pad && d[1] != pad) return 1;
                       return 2;
                     }
                     return 2;
                   });
}

Result<TrackAutomaton> LastSymbolAtom(const Alphabet& alphabet, char a,
                                      VarId x) {
  STRQ_ASSIGN_OR_RETURN(Symbol target, alphabet.SymbolOf(a));
  int pad = alphabet.size();
  // 0 = ε so far, 1 = last symbol is a (accepting), 2 = last symbol differs,
  // 3 = dead.
  return BuildAtom(alphabet, {x}, 4, 0, {false, true, false, false},
                   [pad, target](int q, const std::vector<int>& d) {
                     if (q == 3 || d[0] == pad) return 3;
                     return d[0] == static_cast<int>(target) ? 1 : 2;
                   });
}

Result<TrackAutomaton> AppendGraphAtom(const Alphabet& alphabet, char a,
                                       VarId x, VarId y) {
  STRQ_ASSIGN_OR_RETURN(Symbol target, alphabet.SymbolOf(a));
  int pad = alphabet.size();
  // 0 = matching, 1 = y appended `a` (accepting), 2 = dead.
  return BuildAtom(alphabet, {x, y}, 3, 0, {false, true, false},
                   [pad, target](int q, const std::vector<int>& d) {
                     if (q == 0) {
                       if (d[0] == d[1] && d[0] != pad) return 0;
                       if (d[0] == pad && d[1] == static_cast<int>(target)) {
                         return 1;
                       }
                       return 2;
                     }
                     return 2;
                   });
}

Result<TrackAutomaton> PrependGraphAtom(const Alphabet& alphabet, char a,
                                        VarId x, VarId y) {
  STRQ_ASSIGN_OR_RETURN(Symbol first, alphabet.SymbolOf(a));
  int m = alphabet.size();
  int pad = m;
  // y = a·x means y_1 = a and y_{i+1} = x_i: the machine carries the last
  // seen x-digit, which the next y-digit must reproduce.
  // States: 0 = start; 1+s = carrying x-digit s; m+1 = done (accepting);
  // m+2 = dead.
  int done = m + 1;
  int dead = m + 2;
  std::vector<bool> accepting(m + 3, false);
  accepting[done] = true;
  return BuildAtom(
      alphabet, {x, y}, m + 3, 0, accepting,
      [m, pad, first, done, dead](int q, const std::vector<int>& d) {
        int dx = d[0];
        int dy = d[1];
        if (q == 0) {
          if (dy != static_cast<int>(first)) return dead;
          if (dx == pad) return done;  // x = ε, y = a
          return 1 + dx;
        }
        if (q >= 1 && q <= m) {
          int carried = q - 1;
          if (dy != carried) return dead;
          if (dx == pad) return done;
          return 1 + dx;
        }
        return dead;
      });
}

Result<TrackAutomaton> TrimLeadingGraphAtom(const Alphabet& alphabet, char a,
                                            VarId x, VarId y) {
  STRQ_ASSIGN_OR_RETURN(Symbol lead, alphabet.SymbolOf(a));
  int m = alphabet.size();
  int pad = m;
  // y = x − a: either x = a·y (shift case: carry the last y-digit, which the
  // next x-digit must reproduce), or x does not start with a and y = ε.
  // States: 0 = start (accepting: x = y = ε); 1+s = carrying y-digit s;
  // m+1 = end_ok (accepting, shift case closed); m+2 = xonly (accepting,
  // y = ε while x continues); m+3 = dead.
  int end_ok = m + 1;
  int xonly = m + 2;
  int dead = m + 3;
  std::vector<bool> accepting(m + 4, false);
  accepting[0] = true;
  accepting[end_ok] = true;
  accepting[xonly] = true;
  return BuildAtom(
      alphabet, {x, y}, m + 4, 0, accepting,
      [m, pad, lead, end_ok, xonly, dead](int q, const std::vector<int>& d) {
        int dx = d[0];
        int dy = d[1];
        if (q == 0) {
          if (dx == static_cast<int>(lead)) {
            // Shift case: x = a·y.
            if (dy == pad) return end_ok;  // x = "a", y = ε
            return 1 + dy;
          }
          if (dx != pad && dy == pad) return xonly;  // non-a head, y = ε
          return dead;  // x = ε with non-empty y, or y non-ε in non-a case
        }
        if (q >= 1 && q <= m) {
          int carried = q - 1;
          if (dx != carried) return dead;
          if (dy == pad) return end_ok;
          return 1 + dy;
        }
        if (q == xonly) {
          return (dx != pad && dy == pad) ? xonly : dead;
        }
        return dead;
      });
}

Result<TrackAutomaton> InsertGraphAtom(const Alphabet& alphabet, char a,
                                       VarId p, VarId x, VarId y) {
  STRQ_ASSIGN_OR_RETURN(Symbol ins, alphabet.SymbolOf(a));
  int m = alphabet.size();
  int pad = m;
  // Tracks: d[0] = p, d[1] = x, d[2] = y.
  // Case p ≼ x: y = p·a·(x−p). Phase 1 all three agree; when p ends, y
  // emits `a` while x's current symbol is carried; then y replays x with a
  // one-symbol delay (as in PrependGraphAtom).
  // Case p ⋠ x: y = ε — the y-track must be pad from the FIRST column, so
  // the ε-branch (eqB/acceptB) is entered only from the start state, and
  // the machine then verifies that p and x genuinely diverge.
  // States: 0 = start; 1 = eq3 (phase 1); 2+s = carrying x-digit s;
  // m+2 = done (accepting); m+3 = eqB (y = ε, p = x so far);
  // m+4 = acceptB (accepting, divergence witnessed); m+5 = dead.
  int eq3 = 1;
  int done = m + 2;
  int eq_b = m + 3;
  int accept_b = m + 4;
  int dead = m + 5;
  std::vector<bool> accepting(m + 6, false);
  accepting[done] = true;
  accepting[accept_b] = true;
  return BuildAtom(
      alphabet, {p, x, y}, m + 6, 0, accepting,
      [m, pad, ins, eq3, done, eq_b, accept_b, dead](
          int q, const std::vector<int>& d) {
        int dp = d[0];
        int dx = d[1];
        int dy = d[2];
        auto phase1_step = [&]() -> int {
          if (dp == dx && dx == dy && dp != pad) return eq3;  // all agree
          if (dp == pad && dy == static_cast<int>(ins)) {
            if (dx == pad) return done;  // x = p: y = p·a
            return 2 + dx;               // carry x's current symbol
          }
          return dead;
        };
        auto case_b_step = [&]() -> int {
          // y has ended; p and x must eventually diverge.
          if (dy != pad) return dead;
          if (dp == dx && dp != pad) return eq_b;
          if (dp != pad && dx == pad) return accept_b;  // p longer than x
          if (dp != pad && dx != pad && dp != dx) return accept_b;
          return dead;  // p ≺ x with y = ε is inconsistent
        };
        if (q == 0) {
          if (dy == pad) return case_b_step();
          return phase1_step();
        }
        if (q == eq3) return phase1_step();
        if (q >= 2 && q <= m + 1) {
          int carried = q - 2;
          if (dp != pad || dy != carried) return dead;
          if (dx == pad) return done;
          return 2 + dx;
        }
        if (q == eq_b) return case_b_step();
        if (q == accept_b) return dy == pad ? accept_b : dead;
        return dead;
      });
}

Result<TrackAutomaton> ConstAtom(const Alphabet& alphabet,
                                 const std::string& w, VarId x) {
  STRQ_ASSIGN_OR_RETURN(std::vector<Symbol> word, alphabet.Encode(w));
  int n = static_cast<int>(word.size());
  // States 0..n along the word (n accepting), n+1 dead.
  std::vector<bool> accepting(n + 2, false);
  accepting[n] = true;
  return BuildAtom(alphabet, {x}, n + 2, 0, accepting,
                   [&word, n](int q, const std::vector<int>& d) {
                     if (q < n && d[0] == static_cast<int>(word[q])) {
                       return q + 1;
                     }
                     return n + 1;
                   });
}

Result<TrackAutomaton> EqLenAtom(const Alphabet& alphabet, VarId x, VarId y) {
  int pad = alphabet.size();
  // 0 = both running (accepting), 1 = dead.
  return BuildAtom(alphabet, {x, y}, 2, 0, {true, false},
                   [pad](int q, const std::vector<int>& d) {
                     if (q != 0) return 1;
                     return (d[0] != pad && d[1] != pad) ? 0 : 1;
                   });
}

Result<TrackAutomaton> LeqLenAtom(const Alphabet& alphabet, VarId x, VarId y) {
  int pad = alphabet.size();
  // 0 = both running (accepting), 1 = x finished (accepting), 2 = dead.
  return BuildAtom(alphabet, {x, y}, 3, 0, {true, true, false},
                   [pad](int q, const std::vector<int>& d) {
                     if (q == 0) {
                       if (d[0] != pad && d[1] != pad) return 0;
                       if (d[0] == pad && d[1] != pad) return 1;
                       return 2;
                     }
                     if (q == 1) return (d[0] == pad && d[1] != pad) ? 1 : 2;
                     return 2;
                   });
}

Result<TrackAutomaton> LexLeqAtom(const Alphabet& alphabet, VarId x, VarId y) {
  int pad = alphabet.size();
  // 0 = equal so far (accepting), 1 = x proved smaller at the first
  // difference (accepting, absorbing), 2 = x ended first (accepting),
  // 3 = dead. Symbol order = alphabet order (Section 4).
  return BuildAtom(alphabet, {x, y}, 4, 0, {true, true, true, false},
                   [pad](int q, const std::vector<int>& d) {
                     switch (q) {
                       case 0:
                         if (d[0] == d[1] && d[0] != pad) return 0;
                         if (d[0] != pad && d[1] != pad) {
                           return d[0] < d[1] ? 1 : 3;
                         }
                         if (d[0] == pad && d[1] != pad) return 2;
                         return 3;  // y ended first: y ≺ x, so not x ≤lex y
                       case 1:
                         return 1;
                       case 2:
                         return (d[0] == pad && d[1] != pad) ? 2 : 3;
                       default:
                         return 3;
                     }
                   });
}

Result<TrackAutomaton> LcpAtom(const Alphabet& alphabet, VarId x, VarId y,
                               VarId z) {
  int pad = alphabet.size();
  // 0 = all three agree (accepting: z = x = y so far), 1 = diverged with z
  // finished (accepting), 2 = dead.
  return BuildAtom(alphabet, {x, y, z}, 3, 0, {true, true, false},
                   [pad](int q, const std::vector<int>& d) {
                     if (q == 0) {
                       if (d[0] == d[1] && d[1] == d[2] && d[0] != pad) {
                         return 0;
                       }
                       // Divergence column: z ends exactly where x and y
                       // first differ (difference includes one ending).
                       if (d[2] == pad && d[0] != d[1]) return 1;
                       return 2;
                     }
                     if (q == 1) return d[2] == pad ? 1 : 2;
                     return 2;
                   });
}

Result<TrackAutomaton> MaxLenAtom(const Alphabet& alphabet, int max_len,
                                  VarId x) {
  if (max_len < 0) return InvalidArgumentError("negative length bound");
  int pad = alphabet.size();
  // States 0..max_len count symbols (all accepting); max_len+1 is dead.
  int dead = max_len + 1;
  std::vector<bool> accepting(max_len + 2, true);
  accepting[dead] = false;
  return BuildAtom(alphabet, {x}, max_len + 2, 0, accepting,
                   [max_len, pad, dead](int q, const std::vector<int>& d) {
                     if (q >= max_len || d[0] == pad) return dead;
                     return q + 1;
                   });
}

Result<TrackAutomaton> MemberAtom(const Alphabet& alphabet, const Dfa& lang,
                                  VarId x) {
  if (lang.alphabet_size() != alphabet.size()) {
    return InvalidArgumentError("language DFA alphabet mismatch");
  }
  int pad = alphabet.size();
  int n = lang.num_states();
  int dead = n;
  std::vector<bool> accepting(n + 1, false);
  for (int q = 0; q < n; ++q) accepting[q] = lang.IsAccepting(q);
  return BuildAtom(alphabet, {x}, n + 1, lang.start(), accepting,
                   [&lang, pad, dead, n](int q, const std::vector<int>& d) {
                     if (q >= n || d[0] == pad) return dead;
                     return lang.Next(q, static_cast<Symbol>(d[0]));
                   });
}

Result<TrackAutomaton> SuffixInAtom(const Alphabet& alphabet, const Dfa& lang,
                                    VarId x, VarId y) {
  if (lang.alphabet_size() != alphabet.size()) {
    return InvalidArgumentError("language DFA alphabet mismatch");
  }
  int pad = alphabet.size();
  int n = lang.num_states();
  // States: 0 = equality phase (accepting iff ε ∈ L); 1+q = running L's
  // state q on y's tail; 1+n = dead.
  int dead = n + 1;
  std::vector<bool> accepting(n + 2, false);
  accepting[0] = lang.IsAccepting(lang.start());
  for (int q = 0; q < n; ++q) accepting[1 + q] = lang.IsAccepting(q);
  return BuildAtom(
      alphabet, {x, y}, n + 2, 0, accepting,
      [&lang, pad, dead, n](int q, const std::vector<int>& d) {
        int dx = d[0];
        int dy = d[1];
        if (q == 0) {
          if (dx == dy && dx != pad) return 0;
          if (dx == pad && dy != pad) {
            return 1 + lang.Next(lang.start(), static_cast<Symbol>(dy));
          }
          return dead;
        }
        if (q >= 1 && q <= n) {
          if (dx == pad && dy != pad) {
            return 1 + lang.Next(q - 1, static_cast<Symbol>(dy));
          }
          return dead;
        }
        return dead;
      });
}

}  // namespace strq
