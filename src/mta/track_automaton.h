#ifndef STRQ_MTA_TRACK_AUTOMATON_H_
#define STRQ_MTA_TRACK_AUTOMATON_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "automata/dfa.h"
#include "automata/store.h"
#include "base/alphabet.h"
#include "base/status.h"
#include "mta/conv.h"

namespace strq {

// Variables are small integer ids assigned by the logic layer.
using VarId = int;

// A relation over Σ* of arity k, represented by a complete DFA over the
// padded convolution alphabet (Σ ∪ {⊥})^k. This is the machinery of
// *automatic structures*: all predicates of the paper's S, S_left, S_reg and
// S_len are recognizable this way, which is what makes the decidability
// results of Sections 5-7 effective. Each track is tagged with a VarId; all
// binary operations align variables automatically (cylindrification), so a
// TrackAutomaton is exactly "the set of satisfying assignments of a formula
// over its free variables".
//
// Construction is mediated by an AutomatonStore: the underlying DFA is an
// interned immutable handle (DfaRef), so copying a TrackAutomaton is cheap,
// structurally equal automata are shared, and the first-order operations
// (cylindrify, product, project, rename, complement) are memoized in the
// store's computed table keyed on intern identity. The overloads without a
// store parameter use the process-wide AutomatonStore::Default().
//
// Class invariants:
//  * vars() is strictly increasing;
//  * the DFA accepts only canonical convolutions (pads form track suffixes,
//    no all-pad column), i.e. L(dfa) ⊆ Valid(arity);
//  * the DFA is canonically minimized and interned in store().
class TrackAutomaton {
 public:
  // Wraps a DFA over the convolution alphabet of |vars| tracks. The language
  // is intersected with Valid(arity) to establish the invariant. The store
  // must outlive every automaton (and automaton derived from one) built
  // against it.
  static Result<TrackAutomaton> Create(const AutomatonStore& store,
                                       const Alphabet& alphabet,
                                       std::vector<VarId> vars, Dfa dfa);
  static Result<TrackAutomaton> Create(const Alphabet& alphabet,
                                       std::vector<VarId> vars, Dfa dfa);

  // The full relation Valid(vars): every tuple of strings.
  static Result<TrackAutomaton> FullRelation(const AutomatonStore& store,
                                             const Alphabet& alphabet,
                                             std::vector<VarId> vars);
  static Result<TrackAutomaton> FullRelation(const Alphabet& alphabet,
                                             std::vector<VarId> vars);
  // The empty relation over the given tracks.
  static Result<TrackAutomaton> EmptyRelation(const AutomatonStore& store,
                                              const Alphabet& alphabet,
                                              std::vector<VarId> vars);
  static Result<TrackAutomaton> EmptyRelation(const Alphabet& alphabet,
                                              std::vector<VarId> vars);
  // The "true" 0-ary relation {()} and the "false" one {}.
  static Result<TrackAutomaton> Truth(const AutomatonStore& store,
                                      const Alphabet& alphabet, bool value);
  static Result<TrackAutomaton> Truth(const Alphabet& alphabet, bool value);

  // A finite relation given extensionally, e.g. a database table. Built as a
  // trie over convolution columns, then minimized.
  static Result<TrackAutomaton> FromTuples(
      const AutomatonStore& store, const Alphabet& alphabet,
      std::vector<VarId> vars,
      const std::vector<std::vector<std::string>>& tuples);
  static Result<TrackAutomaton> FromTuples(
      const Alphabet& alphabet, std::vector<VarId> vars,
      const std::vector<std::vector<std::string>>& tuples);

  // The DFA accepting exactly the canonical convolutions of `arity`-tuples
  // (helper shared with tests). Unmemoized; store-mediated construction goes
  // through the computed table instead.
  static Result<Dfa> ValidConvolutions(const ConvAlphabet& conv);

  const Alphabet& alphabet() const { return alphabet_; }
  const std::vector<VarId>& vars() const { return vars_; }
  int arity() const { return static_cast<int>(vars_.size()); }
  const ConvAlphabet& conv() const { return conv_; }
  const Dfa& dfa() const { return *dfa_; }
  // The interned handle; its id identifies the language process-wide.
  const DfaRef& dfa_ref() const { return dfa_; }
  const AutomatonStore& store() const { return *store_; }

  // Membership of a tuple, positionally aligned with vars().
  Result<bool> Contains(const std::vector<std::string>& tuple) const;

  // --- First-order operations -------------------------------------------

  // Extends the relation with unconstrained tracks so that its variable set
  // becomes `new_vars` (a superset of vars(), strictly increasing).
  Result<TrackAutomaton> Cylindrified(std::vector<VarId> new_vars) const;

  // Conjunction / disjunction with automatic variable alignment.
  static Result<TrackAutomaton> Intersect(const TrackAutomaton& a,
                                          const TrackAutomaton& b);
  static Result<TrackAutomaton> Union(const TrackAutomaton& a,
                                      const TrackAutomaton& b);

  // Set difference a ∖ b with automatic variable alignment. The invariant
  // is preserved without re-validation: the result is a sublanguage of a.
  // The workhorse of incremental maintenance (retracting delta tuples from
  // a base relation).
  static Result<TrackAutomaton> Difference(const TrackAutomaton& a,
                                           const TrackAutomaton& b);

  // Negation relative to the full relation over vars().
  Result<TrackAutomaton> Complemented() const;

  // Existential quantification: removes `var` (must be present).
  Result<TrackAutomaton> Project(VarId var) const;

  // Applies a bijective renaming to the variable tags, permuting tracks so
  // the result is sorted again. Variables not in the map keep their id.
  // Order-preserving renamings are label-only: they reuse the interned DFA
  // without rebuilding the transition table.
  Result<TrackAutomaton> Renamed(const std::map<VarId, VarId>& renaming) const;

  // --- Language queries ---------------------------------------------------

  bool IsEmpty() const { return dfa_->IsEmpty(); }
  // Finiteness of the relation = state-safety of the defining query
  // (Proposition 7).
  bool IsFinite() const { return dfa_->IsFinite(); }
  // For arity 0: is this the relation {()} (true) or {} (false)?
  Result<bool> TruthValue() const;

  // Number of tuples whose longest component has length <= n (saturating).
  uint64_t CountUpToLength(int n) const { return dfa_->CountUpToLength(n); }

  // Tuples in shortlex order of their convolution, bounded by component
  // length and count.
  std::vector<std::vector<std::string>> EnumerateTuples(
      int max_len, size_t max_count) const;

  // All tuples of a finite relation (error if infinite).
  Result<std::vector<std::vector<std::string>>> AllTuples(
      size_t max_count = 10000000) const;

  // For arity-1 relations: the answer language as a DFA over the BASE
  // alphabet Σ (the convolution pad digit never occurs on canonical unary
  // words, so it is dropped). Combined with RegexFromDfa this lets unsafe
  // queries' infinite answer sets be described as regular expressions.
  Result<Dfa> UnaryLanguage() const;

  int NumStates() const { return dfa_->num_states(); }
  // Transition-table entries of the underlying convolution DFA (complete
  // tables: NumStates() * conv().num_letters()).
  int64_t NumTransitions() const { return dfa_->NumTransitions(); }
  // Symbol-equivalence classes of the convolution DFA — the number of
  // genuinely distinct column behaviors out of conv().num_letters() letters.
  int NumClasses() const { return dfa_->num_classes(); }
  // Bytes of the condensed transition structure actually stored, and the
  // dense letter-indexed equivalent it replaces.
  int64_t TableBytesCondensed() const { return dfa_->TableBytesCondensed(); }
  int64_t TableBytesDenseEquiv() const { return dfa_->TableBytesDenseEquiv(); }

 private:
  TrackAutomaton(Alphabet alphabet, std::vector<VarId> vars, ConvAlphabet conv,
                 DfaRef dfa, const AutomatonStore* store)
      : alphabet_(std::move(alphabet)),
        vars_(std::move(vars)),
        conv_(conv),
        dfa_(std::move(dfa)),
        store_(store) {}

  Alphabet alphabet_;
  std::vector<VarId> vars_;
  ConvAlphabet conv_;
  DfaRef dfa_;
  const AutomatonStore* store_;
};

}  // namespace strq

#endif  // STRQ_MTA_TRACK_AUTOMATON_H_
