#ifndef STRQ_MTA_CONV_H_
#define STRQ_MTA_CONV_H_

#include <string>
#include <vector>

#include "base/alphabet.h"
#include "base/status.h"

namespace strq {

// The padded convolution alphabet used by synchronous multi-track automata.
//
// A tuple (w_1, ..., w_k) of strings over Σ is encoded as a single word over
// (Σ ∪ {⊥})^k: column j carries the j-th symbol of every track, with the pad
// digit ⊥ once a track has ended. The canonical convolution has length
// max_i |w_i|, so it never contains an all-pad column, and within each track
// pads form a suffix. This is the classical encoding under which all
// predicates of the paper's structures S, S_left, S_reg, S_len are regular
// ("automatic"), while concatenation is not.
//
// Columns are encoded as base-(|Σ|+1) numbers so they fit the Symbol type of
// the single-track Dfa/Nfa machinery, which is reused unchanged for
// multi-track work.
class ConvAlphabet {
 public:
  // base_size = |Σ|; arity = number of tracks k (0 allowed: the convolution
  // of the empty tuple is the empty word). Fails if (|Σ|+1)^k overflows the
  // Symbol letter space.
  static Result<ConvAlphabet> Create(int base_size, int arity);

  int base_size() const { return base_size_; }
  int arity() const { return arity_; }
  // Total number of column letters, including the (non-canonical) all-pad
  // column; (|Σ|+1)^arity.
  int num_letters() const { return num_letters_; }
  // The pad digit ⊥.
  int pad() const { return base_size_; }

  // Column <-> digit vector conversions. Digits are in {0..|Σ|} with |Σ|=pad.
  Symbol Encode(const std::vector<int>& digits) const;
  std::vector<int> Decode(Symbol letter) const;

  // Digit of track `track` within `letter`. One div + one mod against the
  // precomputed track stride — no loop.
  int DigitAt(Symbol letter, int track) const {
    return (letter / pow_[track]) % (base_size_ + 1);
  }

  // Replaces the digit of `track` in `letter`.
  Symbol WithDigit(Symbol letter, int track, int digit) const {
    return static_cast<Symbol>(letter +
                               (digit - DigitAt(letter, track)) * pow_[track]);
  }

  // (|Σ|+1)^track, the positional weight of `track` in the column encoding.
  // Defined for track in [0, arity] — TrackStride(arity) == num_letters() —
  // so kernel inner loops can split/recompose letters arithmetically, e.g.
  // inserting digit d at position t into a letter r of the next-lower arity:
  //   r % TrackStride(t) + d*TrackStride(t) + (r / TrackStride(t))*TrackStride(t+1).
  int TrackStride(int track) const { return pow_[track]; }

  // True iff every digit is pad (such a column never occurs canonically).
  bool IsAllPad(Symbol letter) const;

  // Canonical convolution of a tuple of symbol strings (one per track).
  // Precondition: tuple.size() == arity().
  std::vector<Symbol> Convolve(
      const std::vector<std::vector<Symbol>>& tuple) const;

  // Inverse of Convolve; precondition: `word` is canonical.
  std::vector<std::vector<Symbol>> Deconvolve(
      const std::vector<Symbol>& word) const;

  // Convenience over character strings.
  Result<std::vector<Symbol>> ConvolveStrings(
      const Alphabet& alphabet, const std::vector<std::string>& tuple) const;
  std::vector<std::string> DeconvolveStrings(
      const Alphabet& alphabet, const std::vector<Symbol>& word) const;

 private:
  ConvAlphabet(int base_size, int arity, int num_letters);

  int base_size_;
  int arity_;
  int num_letters_;
  // pow_[t] = (|Σ|+1)^t for t in [0, arity]; the digit-extraction power
  // table behind DigitAt/WithDigit/TrackStride.
  std::vector<int> pow_;
};

}  // namespace strq

#endif  // STRQ_MTA_CONV_H_
