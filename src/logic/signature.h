#ifndef STRQ_LOGIC_SIGNATURE_H_
#define STRQ_LOGIC_SIGNATURE_H_

#include <string>

#include "base/alphabet.h"
#include "base/status.h"
#include "logic/ast.h"

namespace strq {

// The five relational calculi studied in the paper, ordered by Figure 1's
// inclusion diagram (kConcat on top, kS at the bottom, kSLeft and kSReg
// incomparable in between, both below kSLen).
enum class StructureId {
  kS,       // RC(S):      ⟨Σ*, ≼, (L_a)⟩
  kSLeft,   // RC(S_left): S + (f_a), TRIM_a
  kSReg,    // RC(S_reg):  S + (P_L) for all regular L
  kSInsert, // RC(S_ins):  S + insert_a(p, x) — the Conclusion's proposed
            //             extension; f_a = insert_a(ε, ·), so S_left ⊆ S_ins.
            //             Its relationship to S_len is open in the paper;
            //             the gate is conservative (S_len ⊉ S_ins here).
  kSLen,    // RC(S_len):  S + el
  kConcat,  // RC_concat:  S + concatenation (computationally complete, §3)
};

const char* StructureName(StructureId s);

// Is every predicate/term of `language` also available in `in`? (Figure 1.)
bool StructureIncludes(StructureId in, StructureId language);

// Checks that `f` is a well-formed RC(SC, M) query for M = `structure`:
//  * every predicate and term former belongs to the structure's signature
//    (kMember/kSuffixIn/kLike require a *star-free* language for S and
//    S_left, which is verified by compiling the pattern over `alphabet` and
//    running the aperiodicity test);
//  * all constants and pattern literals use only characters of `alphabet`
//    (patterns may additionally use their metacharacters);
//  * length-restricted quantifiers only appear for S_len.
// Returns NotInLanguage with an explanatory message on failure.
Status CheckInLanguage(const FormulaPtr& f, StructureId structure,
                       const Alphabet& alphabet);

// The least structure (by Figure 1) containing the formula, if any: checks
// kS, kSLeft, kSReg, kSLen, kConcat in order. kSLeft and kSReg are
// incomparable; when a formula needs both, the answer is kSLen.
Result<StructureId> MinimalStructure(const FormulaPtr& f,
                                     const Alphabet& alphabet);

}  // namespace strq

#endif  // STRQ_LOGIC_SIGNATURE_H_
