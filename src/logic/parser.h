#ifndef STRQ_LOGIC_PARSER_H_
#define STRQ_LOGIC_PARSER_H_

#include <string>

#include "base/status.h"
#include "logic/ast.h"

namespace strq {

// Parses the concrete query syntax produced by ToString(). Grammar sketch:
//
//   formula  := quantified | iff
//   quantified := ('exists'|'forall') IDENT range? '.' formula
//   range    := 'in adom' | 'pre adom' | 'len adom'
//   iff      := implies ('<->' implies)*
//   implies  := or ('->' or)*              (right associative)
//   or       := and ('|' and)*
//   and      := unary ('&' unary)*
//   unary    := '!' unary | 'true' | 'false' | '(' formula ')' | atom
//   atom     := predicate-call | relation-call | term ('='|'<='|'<') term
//
//   predicates: step(t,t), last[a](t), eqlen(t,t), leqlen(t,t), lexleq(t,t),
//               adom(t), like(t,'pat'), member(t,'pat'[,syntax]),
//               suffixin(t,t,'pat'[,syntax])    syntax in {regex,like,similar}
//   terms:      IDENT | 'literal' | append[a](t) | prepend[a](t) |
//               trim[a](t) | lcp(t,t) | concat(t,t)
//
// Infix '=' is equality, '<=' the prefix order ≼, '<' the strict prefix ≺.
// Any other IDENT followed by '(' is a database relation atom.
Result<FormulaPtr> ParseFormula(const std::string& input);

// Parses a single term (mostly for tests and tools).
Result<TermPtr> ParseTerm(const std::string& input);

}  // namespace strq

#endif  // STRQ_LOGIC_PARSER_H_
