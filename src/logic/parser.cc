#include "logic/parser.h"

#include <cctype>
#include <optional>
#include <vector>

namespace strq {

namespace {

enum class TokKind {
  kIdent,
  kLiteral,  // 'string'
  kLParen,
  kRParen,
  kLBracket,
  kRBracket,
  kComma,
  kDot,
  kEq,       // =
  kLeq,      // <=
  kLt,       // <
  kAnd,      // &
  kOr,       // |
  kNot,      // !
  kImplies,  // ->
  kIff,      // <->
  kTilde,    // ~k similarity comparator; token text carries the digits
  kEnd,
};

struct Token {
  TokKind kind;
  std::string text;  // ident name or literal value
  size_t pos;
};

Result<std::vector<Token>> Lex(const std::string& input) {
  std::vector<Token> out;
  size_t i = 0;
  while (i < input.size()) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    size_t pos = i;
    // Identifiers may be alphanumeric so that single digits work as letter
    // parameters (last[1](x)) and variables like c0 lex naturally.
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < input.size() &&
             (std::isalnum(static_cast<unsigned char>(input[j])) ||
              input[j] == '_')) {
        ++j;
      }
      out.push_back({TokKind::kIdent, input.substr(i, j - i), pos});
      i = j;
      continue;
    }
    if (c == '\'') {
      std::string value;
      ++i;
      bool closed = false;
      while (i < input.size()) {
        if (input[i] == '\\' && i + 1 < input.size()) {
          value += input[i + 1];
          i += 2;
        } else if (input[i] == '\'') {
          ++i;
          closed = true;
          break;
        } else {
          value += input[i++];
        }
      }
      if (!closed) {
        return InvalidArgumentError("unterminated string literal at position " +
                                    std::to_string(pos));
      }
      out.push_back({TokKind::kLiteral, value, pos});
      continue;
    }
    auto push1 = [&](TokKind k) {
      out.push_back({k, std::string(1, c), pos});
      ++i;
    };
    switch (c) {
      case '(':
        push1(TokKind::kLParen);
        break;
      case ')':
        push1(TokKind::kRParen);
        break;
      case '[':
        push1(TokKind::kLBracket);
        break;
      case ']':
        push1(TokKind::kRBracket);
        break;
      case ',':
        push1(TokKind::kComma);
        break;
      case '.':
        push1(TokKind::kDot);
        break;
      case '=':
        push1(TokKind::kEq);
        break;
      case '&':
        push1(TokKind::kAnd);
        break;
      case '|':
        push1(TokKind::kOr);
        break;
      case '!':
        push1(TokKind::kNot);
        break;
      case '<':
        if (input.compare(i, 3, "<->") == 0) {
          out.push_back({TokKind::kIff, "<->", pos});
          i += 3;
        } else if (input.compare(i, 2, "<=") == 0) {
          out.push_back({TokKind::kLeq, "<=", pos});
          i += 2;
        } else {
          push1(TokKind::kLt);
        }
        break;
      case '-':
        if (input.compare(i, 2, "->") == 0) {
          out.push_back({TokKind::kImplies, "->", pos});
          i += 2;
        } else {
          return InvalidArgumentError("stray '-' at position " +
                                      std::to_string(pos));
        }
        break;
      case '~': {
        // ~k edit-distance comparator: the digits are part of the token.
        size_t j = i + 1;
        while (j < input.size() &&
               std::isdigit(static_cast<unsigned char>(input[j]))) {
          ++j;
        }
        if (j == i + 1) {
          return InvalidArgumentError(
              "expected edit budget digits after '~' at position " +
              std::to_string(pos));
        }
        out.push_back({TokKind::kTilde, input.substr(i + 1, j - i - 1), pos});
        i = j;
        break;
      }
      default:
        return InvalidArgumentError(std::string("unexpected character '") + c +
                                    "' at position " + std::to_string(pos));
    }
  }
  out.push_back({TokKind::kEnd, "", input.size()});
  return out;
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<FormulaPtr> ParseFormulaAll() {
    STRQ_ASSIGN_OR_RETURN(FormulaPtr f, ParseFormula());
    STRQ_RETURN_IF_ERROR(Expect(TokKind::kEnd, "end of input"));
    return f;
  }

  Result<TermPtr> ParseTermAll() {
    STRQ_ASSIGN_OR_RETURN(TermPtr t, ParseTermExpr());
    STRQ_RETURN_IF_ERROR(Expect(TokKind::kEnd, "end of input"));
    return t;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& PeekAt(size_t offset) const {
    size_t i = pos_ + offset;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  Token Take() { return tokens_[pos_++]; }
  bool Accept(TokKind kind) {
    if (Peek().kind == kind) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool AcceptIdent(const std::string& word) {
    if (Peek().kind == TokKind::kIdent && Peek().text == word) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status Expect(TokKind kind, const std::string& what) {
    if (Peek().kind != kind) {
      return InvalidArgumentError("expected " + what + " at position " +
                                  std::to_string(Peek().pos) + ", found '" +
                                  Peek().text + "'");
    }
    ++pos_;
    return Status::Ok();
  }

  Result<FormulaPtr> ParseFormula() {
    // Quantifiers scope over everything to their right.
    if (Peek().kind == TokKind::kIdent &&
        (Peek().text == "exists" || Peek().text == "forall")) {
      bool is_exists = Take().text == "exists";
      if (Peek().kind != TokKind::kIdent) {
        return InvalidArgumentError("expected variable after quantifier");
      }
      std::string var = Take().text;
      QuantRange range = QuantRange::kAll;
      if (AcceptIdent("in")) {
        STRQ_RETURN_IF_ERROR(ExpectAdom());
        range = QuantRange::kAdom;
      } else if (AcceptIdent("pre")) {
        STRQ_RETURN_IF_ERROR(ExpectAdom());
        range = QuantRange::kPrefixDom;
      } else if (AcceptIdent("len")) {
        STRQ_RETURN_IF_ERROR(ExpectAdom());
        range = QuantRange::kLenDom;
      }
      STRQ_RETURN_IF_ERROR(Expect(TokKind::kDot, "'.' after quantifier"));
      STRQ_ASSIGN_OR_RETURN(FormulaPtr body, ParseFormula());
      return is_exists ? FExists(var, std::move(body), range)
                       : FForall(var, std::move(body), range);
    }
    return ParseIff();
  }

  Status ExpectAdom() {
    if (!AcceptIdent("adom")) {
      return InvalidArgumentError("expected 'adom' in quantifier range");
    }
    return Status::Ok();
  }

  Result<FormulaPtr> ParseIff() {
    STRQ_ASSIGN_OR_RETURN(FormulaPtr left, ParseImplies());
    while (Accept(TokKind::kIff)) {
      STRQ_ASSIGN_OR_RETURN(FormulaPtr right, ParseImplies());
      left = FIff(std::move(left), std::move(right));
    }
    return left;
  }

  Result<FormulaPtr> ParseImplies() {
    STRQ_ASSIGN_OR_RETURN(FormulaPtr left, ParseOr());
    if (Accept(TokKind::kImplies)) {
      STRQ_ASSIGN_OR_RETURN(FormulaPtr right, ParseImplies());  // right assoc
      return FImplies(std::move(left), std::move(right));
    }
    return left;
  }

  Result<FormulaPtr> ParseOr() {
    STRQ_ASSIGN_OR_RETURN(FormulaPtr left, ParseAnd());
    while (Accept(TokKind::kOr)) {
      STRQ_ASSIGN_OR_RETURN(FormulaPtr right, ParseAnd());
      left = FOr(std::move(left), std::move(right));
    }
    return left;
  }

  Result<FormulaPtr> ParseAnd() {
    STRQ_ASSIGN_OR_RETURN(FormulaPtr left, ParseUnary());
    while (Accept(TokKind::kAnd)) {
      STRQ_ASSIGN_OR_RETURN(FormulaPtr right, ParseUnary());
      left = FAnd(std::move(left), std::move(right));
    }
    return left;
  }

  Result<FormulaPtr> ParseUnary() {
    if (Accept(TokKind::kNot)) {
      STRQ_ASSIGN_OR_RETURN(FormulaPtr f, ParseUnary());
      return FNot(std::move(f));
    }
    if (Peek().kind == TokKind::kIdent &&
        (Peek().text == "exists" || Peek().text == "forall")) {
      return ParseFormula();
    }
    if (AcceptIdent("true")) return FTrue();
    if (AcceptIdent("false")) return FFalse();
    if (Accept(TokKind::kLParen)) {
      STRQ_ASSIGN_OR_RETURN(FormulaPtr f, ParseFormula());
      STRQ_RETURN_IF_ERROR(Expect(TokKind::kRParen, "')'"));
      return f;
    }
    return ParseAtom();
  }

  static bool IsPredName(const std::string& name) {
    return name == "step" || name == "last" || name == "eqlen" ||
           name == "leqlen" || name == "lexleq" || name == "adom" ||
           name == "like" || name == "member" || name == "suffixin";
  }

  static bool IsFuncName(const std::string& name) {
    return name == "append" || name == "prepend" || name == "trim" ||
           name == "lcp" || name == "concat" || name == "insert";
  }

  Result<FormulaPtr> ParseAtom() {
    // Predicate call?
    if (Peek().kind == TokKind::kIdent && IsPredName(Peek().text) &&
        (PeekAt(1).kind == TokKind::kLParen ||
         PeekAt(1).kind == TokKind::kLBracket)) {
      return ParsePredCall();
    }
    // Relation call: IDENT '(' not matching a function name.
    if (Peek().kind == TokKind::kIdent && !IsFuncName(Peek().text) &&
        PeekAt(1).kind == TokKind::kLParen) {
      std::string name = Take().text;
      STRQ_ASSIGN_OR_RETURN(std::vector<TermPtr> args, ParseArgList());
      return FRelation(std::move(name), std::move(args));
    }
    // Otherwise: term comparator term.
    STRQ_ASSIGN_OR_RETURN(TermPtr lhs, ParseTermExpr());
    PredKind pred;
    if (Accept(TokKind::kEq)) {
      pred = PredKind::kEq;
    } else if (Accept(TokKind::kLeq)) {
      pred = PredKind::kPrefix;
    } else if (Accept(TokKind::kLt)) {
      pred = PredKind::kStrictPrefix;
    } else if (Peek().kind == TokKind::kTilde) {
      // t ~k 'word': bounded-edit-distance similarity atom. The right-hand
      // side must be a literal — the Levenshtein automaton is built from a
      // fixed word, not from another track.
      Token tilde = Take();
      if (tilde.text.size() > 4) {
        return InvalidArgumentError("edit budget ~" + tilde.text +
                                    " is out of range");
      }
      int distance = 0;
      for (char c : tilde.text) distance = distance * 10 + (c - '0');
      if (Peek().kind != TokKind::kLiteral) {
        return InvalidArgumentError(
            "expected a quoted word after ~" + tilde.text + " at position " +
            std::to_string(Peek().pos));
      }
      std::string word = Take().text;
      return FNear(std::move(lhs), std::move(word), distance);
    } else {
      return InvalidArgumentError("expected comparison operator at position " +
                                  std::to_string(Peek().pos));
    }
    STRQ_ASSIGN_OR_RETURN(TermPtr rhs, ParseTermExpr());
    return FPred(pred, {std::move(lhs), std::move(rhs)});
  }

  Result<char> ParseLetterParam() {
    STRQ_RETURN_IF_ERROR(Expect(TokKind::kLBracket, "'['"));
    if (Peek().kind != TokKind::kIdent || Peek().text.size() != 1) {
      return InvalidArgumentError("expected a single-letter parameter");
    }
    char letter = Take().text[0];
    STRQ_RETURN_IF_ERROR(Expect(TokKind::kRBracket, "']'"));
    return letter;
  }

  Result<std::vector<TermPtr>> ParseArgList() {
    STRQ_RETURN_IF_ERROR(Expect(TokKind::kLParen, "'('"));
    std::vector<TermPtr> args;
    if (Accept(TokKind::kRParen)) return args;
    while (true) {
      STRQ_ASSIGN_OR_RETURN(TermPtr t, ParseTermExpr());
      args.push_back(std::move(t));
      if (Accept(TokKind::kRParen)) break;
      STRQ_RETURN_IF_ERROR(Expect(TokKind::kComma, "','"));
    }
    return args;
  }

  Result<PatternSyntax> ParseSyntaxName() {
    if (AcceptIdent("regex")) return PatternSyntax::kRegex;
    if (AcceptIdent("like")) return PatternSyntax::kLikePattern;
    if (AcceptIdent("similar")) return PatternSyntax::kSimilar;
    return InvalidArgumentError(
        "expected pattern syntax: regex, like, or similar");
  }

  Result<FormulaPtr> ParsePredCall() {
    std::string name = Take().text;
    if (name == "last") {
      STRQ_ASSIGN_OR_RETURN(char letter, ParseLetterParam());
      STRQ_ASSIGN_OR_RETURN(std::vector<TermPtr> args, ParseArgList());
      if (args.size() != 1) {
        return InvalidArgumentError("last[] takes one argument");
      }
      return FLast(letter, args[0]);
    }
    if (name == "like" || name == "member" || name == "suffixin") {
      STRQ_RETURN_IF_ERROR(Expect(TokKind::kLParen, "'('"));
      size_t term_count = name == "suffixin" ? 2 : 1;
      std::vector<TermPtr> terms;
      for (size_t i = 0; i < term_count; ++i) {
        STRQ_ASSIGN_OR_RETURN(TermPtr t, ParseTermExpr());
        terms.push_back(std::move(t));
        STRQ_RETURN_IF_ERROR(Expect(TokKind::kComma, "','"));
      }
      if (Peek().kind != TokKind::kLiteral) {
        return InvalidArgumentError("expected pattern literal in " + name);
      }
      std::string pattern = Take().text;
      PatternSyntax syntax = name == "like" ? PatternSyntax::kLikePattern
                                            : PatternSyntax::kRegex;
      if (name != "like" && Accept(TokKind::kComma)) {
        STRQ_ASSIGN_OR_RETURN(syntax, ParseSyntaxName());
      }
      STRQ_RETURN_IF_ERROR(Expect(TokKind::kRParen, "')'"));
      if (name == "like") return FLike(terms[0], std::move(pattern));
      if (name == "member") {
        return FMember(terms[0], std::move(pattern), syntax);
      }
      return FSuffixIn(terms[0], terms[1], std::move(pattern), syntax);
    }
    // Fixed-arity term predicates.
    STRQ_ASSIGN_OR_RETURN(std::vector<TermPtr> args, ParseArgList());
    auto need = [&](size_t n) -> Status {
      if (args.size() != n) {
        return InvalidArgumentError(name + " takes " + std::to_string(n) +
                                    " argument(s)");
      }
      return Status::Ok();
    };
    if (name == "step") {
      STRQ_RETURN_IF_ERROR(need(2));
      return FPred(PredKind::kOneStep, std::move(args));
    }
    if (name == "eqlen") {
      STRQ_RETURN_IF_ERROR(need(2));
      return FPred(PredKind::kEqLen, std::move(args));
    }
    if (name == "leqlen") {
      STRQ_RETURN_IF_ERROR(need(2));
      return FPred(PredKind::kLeqLen, std::move(args));
    }
    if (name == "lexleq") {
      STRQ_RETURN_IF_ERROR(need(2));
      return FPred(PredKind::kLexLeq, std::move(args));
    }
    if (name == "adom") {
      STRQ_RETURN_IF_ERROR(need(1));
      return FPred(PredKind::kAdom, std::move(args));
    }
    return InternalError("unhandled predicate " + name);
  }

  Result<TermPtr> ParseTermExpr() {
    if (Peek().kind == TokKind::kLiteral) return TConst(Take().text);
    if (Peek().kind != TokKind::kIdent) {
      return InvalidArgumentError("expected term at position " +
                                  std::to_string(Peek().pos));
    }
    std::string name = Peek().text;
    if (IsFuncName(name)) {
      Take();
      if (name == "lcp" || name == "concat") {
        STRQ_ASSIGN_OR_RETURN(std::vector<TermPtr> args, ParseArgList());
        if (args.size() != 2) {
          return InvalidArgumentError(name + " takes two arguments");
        }
        return name == "lcp" ? TLcp(args[0], args[1])
                             : TConcat(args[0], args[1]);
      }
      if (name == "insert") {
        STRQ_ASSIGN_OR_RETURN(char letter, ParseLetterParam());
        STRQ_ASSIGN_OR_RETURN(std::vector<TermPtr> args, ParseArgList());
        if (args.size() != 2) {
          return InvalidArgumentError("insert[] takes two arguments");
        }
        return TInsert(letter, args[0], args[1]);
      }
      STRQ_ASSIGN_OR_RETURN(char letter, ParseLetterParam());
      STRQ_ASSIGN_OR_RETURN(std::vector<TermPtr> args, ParseArgList());
      if (args.size() != 1) {
        return InvalidArgumentError(name + "[] takes one argument");
      }
      if (name == "append") return TAppend(letter, args[0]);
      if (name == "prepend") return TPrepend(letter, args[0]);
      return TTrim(letter, args[0]);
    }
    return TVar(Take().text);
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<FormulaPtr> ParseFormula(const std::string& input) {
  STRQ_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(input));
  return Parser(std::move(tokens)).ParseFormulaAll();
}

Result<TermPtr> ParseTerm(const std::string& input) {
  STRQ_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(input));
  return Parser(std::move(tokens)).ParseTermAll();
}

}  // namespace strq
