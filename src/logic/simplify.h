#ifndef STRQ_LOGIC_SIMPLIFY_H_
#define STRQ_LOGIC_SIMPLIFY_H_

#include "logic/ast.h"

namespace strq {

// Semantics-preserving formula simplification, applied bottom-up:
//   * constant folding through every connective and quantifier
//     (true ∧ φ → φ, false ∧ φ → false, ¬true → false, ∃x true → true for
//     ranges that are provably non-empty, ...);
//   * double-negation elimination;
//   * idempotence on syntactically identical operands (φ ∧ φ → φ);
//   * ground-term folding in atoms (e.g. 'ab' = 'ab' → true, trim[a] and
//     friends evaluated on constants);
//   * unused-variable quantifier elimination for plain ∃/∀ (the domain Σ*
//     is non-empty, so ∃x φ ≡ φ when x ∉ FV(φ)).
// Restricted-range quantifiers over possibly-empty ranges (in adom,
// pre adom) are kept even when the variable is unused: their truth depends
// on the database.
//
// The simplifier shrinks formulas before compilation; both engines accept
// its output unchanged, and simplify_test.cc cross-checks equivalence on
// randomly generated formulas.
FormulaPtr Simplify(const FormulaPtr& f);

// Negation normal form: negations pushed to atoms, implications and
// biconditionals expanded, double negations removed. Restricted quantifier
// ranges dualize soundly (∀x∈R φ ≡ ¬∃x∈R ¬φ holds for every range kind).
// Atoms under an odd number of negations stay wrapped in a single kNot.
FormulaPtr ToNegationNormalForm(const FormulaPtr& f);

// True iff negations occur only directly on atoms (kPred / kRelation) and
// no kImplies/kIff nodes remain — the NNF invariant.
bool IsNegationNormalForm(const FormulaPtr& f);

}  // namespace strq

#endif  // STRQ_LOGIC_SIMPLIFY_H_
