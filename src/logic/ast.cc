#include "logic/ast.h"

#include <cassert>
#include <utility>

namespace strq {

namespace {

TermPtr MakeTerm(Term t) { return std::make_shared<const Term>(std::move(t)); }
FormulaPtr MakeFormula(Formula f) {
  return std::make_shared<const Formula>(std::move(f));
}

}  // namespace

TermPtr TVar(std::string name) {
  return MakeTerm({.kind = TermKind::kVar, .var = std::move(name)});
}
TermPtr TConst(std::string value) {
  return MakeTerm({.kind = TermKind::kConst, .text = std::move(value)});
}
TermPtr TAppend(char letter, TermPtr t) {
  return MakeTerm(
      {.kind = TermKind::kAppend, .letter = letter, .arg0 = std::move(t)});
}
TermPtr TPrepend(char letter, TermPtr t) {
  return MakeTerm(
      {.kind = TermKind::kPrepend, .letter = letter, .arg0 = std::move(t)});
}
TermPtr TTrim(char letter, TermPtr t) {
  return MakeTerm(
      {.kind = TermKind::kTrim, .letter = letter, .arg0 = std::move(t)});
}
TermPtr TLcp(TermPtr a, TermPtr b) {
  return MakeTerm(
      {.kind = TermKind::kLcp, .arg0 = std::move(a), .arg1 = std::move(b)});
}
TermPtr TInsert(char letter, TermPtr prefix, TermPtr subject) {
  return MakeTerm({.kind = TermKind::kInsert,
                   .letter = letter,
                   .arg0 = std::move(prefix),
                   .arg1 = std::move(subject)});
}
TermPtr TConcat(TermPtr a, TermPtr b) {
  return MakeTerm(
      {.kind = TermKind::kConcat, .arg0 = std::move(a), .arg1 = std::move(b)});
}

FormulaPtr FTrue() { return MakeFormula({.kind = FormulaKind::kTrue}); }
FormulaPtr FFalse() { return MakeFormula({.kind = FormulaKind::kFalse}); }

FormulaPtr FPred(PredKind pred, std::vector<TermPtr> args) {
  return MakeFormula(
      {.kind = FormulaKind::kPred, .args = std::move(args), .pred = pred});
}

FormulaPtr FLast(char letter, TermPtr t) {
  return MakeFormula({.kind = FormulaKind::kPred,
                      .args = {std::move(t)},
                      .pred = PredKind::kLast,
                      .letter = letter});
}

FormulaPtr FMember(TermPtr t, std::string pattern, PatternSyntax syntax) {
  return MakeFormula({.kind = FormulaKind::kPred,
                      .args = {std::move(t)},
                      .pred = PredKind::kMember,
                      .pattern = std::move(pattern),
                      .syntax = syntax});
}

FormulaPtr FSuffixIn(TermPtr t1, TermPtr t2, std::string pattern,
                     PatternSyntax syntax) {
  return MakeFormula({.kind = FormulaKind::kPred,
                      .args = {std::move(t1), std::move(t2)},
                      .pred = PredKind::kSuffixIn,
                      .pattern = std::move(pattern),
                      .syntax = syntax});
}

FormulaPtr FLike(TermPtr t, std::string pattern) {
  return MakeFormula({.kind = FormulaKind::kPred,
                      .args = {std::move(t)},
                      .pred = PredKind::kLike,
                      .pattern = std::move(pattern),
                      .syntax = PatternSyntax::kLikePattern});
}

FormulaPtr FNear(TermPtr t, std::string word, int distance) {
  return MakeFormula({.kind = FormulaKind::kPred,
                      .args = {std::move(t)},
                      .pred = PredKind::kNear,
                      .pattern = std::move(word),
                      .distance = distance});
}

FormulaPtr FRelation(std::string name, std::vector<TermPtr> args) {
  return MakeFormula({.kind = FormulaKind::kRelation,
                      .args = std::move(args),
                      .relation = std::move(name)});
}

FormulaPtr FNot(FormulaPtr f) {
  return MakeFormula({.kind = FormulaKind::kNot, .left = std::move(f)});
}
FormulaPtr FAnd(FormulaPtr a, FormulaPtr b) {
  return MakeFormula({.kind = FormulaKind::kAnd,
                      .left = std::move(a),
                      .right = std::move(b)});
}
FormulaPtr FOr(FormulaPtr a, FormulaPtr b) {
  return MakeFormula(
      {.kind = FormulaKind::kOr, .left = std::move(a), .right = std::move(b)});
}
FormulaPtr FImplies(FormulaPtr a, FormulaPtr b) {
  return MakeFormula({.kind = FormulaKind::kImplies,
                      .left = std::move(a),
                      .right = std::move(b)});
}
FormulaPtr FIff(FormulaPtr a, FormulaPtr b) {
  return MakeFormula({.kind = FormulaKind::kIff,
                      .left = std::move(a),
                      .right = std::move(b)});
}
FormulaPtr FExists(std::string var, FormulaPtr body, QuantRange range) {
  return MakeFormula({.kind = FormulaKind::kExists,
                      .left = std::move(body),
                      .var = std::move(var),
                      .range = range});
}
FormulaPtr FForall(std::string var, FormulaPtr body, QuantRange range) {
  return MakeFormula({.kind = FormulaKind::kForall,
                      .left = std::move(body),
                      .var = std::move(var),
                      .range = range});
}

FormulaPtr FAndAll(const std::vector<FormulaPtr>& fs) {
  if (fs.empty()) return FTrue();
  FormulaPtr out = fs[0];
  for (size_t i = 1; i < fs.size(); ++i) out = FAnd(out, fs[i]);
  return out;
}

FormulaPtr FOrAll(const std::vector<FormulaPtr>& fs) {
  if (fs.empty()) return FFalse();
  FormulaPtr out = fs[0];
  for (size_t i = 1; i < fs.size(); ++i) out = FOr(out, fs[i]);
  return out;
}

namespace {

void CollectTermVars(const TermPtr& t, std::set<std::string>& out) {
  if (t == nullptr) return;
  if (t->kind == TermKind::kVar) out.insert(t->var);
  CollectTermVars(t->arg0, out);
  CollectTermVars(t->arg1, out);
}

void CollectFreeVars(const FormulaPtr& f, std::set<std::string>& out) {
  switch (f->kind) {
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
      return;
    case FormulaKind::kPred:
    case FormulaKind::kRelation:
      for (const TermPtr& t : f->args) CollectTermVars(t, out);
      return;
    case FormulaKind::kNot:
      CollectFreeVars(f->left, out);
      return;
    case FormulaKind::kAnd:
    case FormulaKind::kOr:
    case FormulaKind::kImplies:
    case FormulaKind::kIff:
      CollectFreeVars(f->left, out);
      CollectFreeVars(f->right, out);
      return;
    case FormulaKind::kExists:
    case FormulaKind::kForall: {
      std::set<std::string> inner;
      CollectFreeVars(f->left, inner);
      inner.erase(f->var);
      out.insert(inner.begin(), inner.end());
      return;
    }
  }
}

}  // namespace

std::set<std::string> TermVars(const TermPtr& t) {
  std::set<std::string> out;
  CollectTermVars(t, out);
  return out;
}

std::set<std::string> FreeVars(const FormulaPtr& f) {
  std::set<std::string> out;
  CollectFreeVars(f, out);
  return out;
}

int QuantifierRank(const FormulaPtr& f) {
  switch (f->kind) {
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
    case FormulaKind::kPred:
    case FormulaKind::kRelation:
      return 0;
    case FormulaKind::kNot:
      return QuantifierRank(f->left);
    case FormulaKind::kAnd:
    case FormulaKind::kOr:
    case FormulaKind::kImplies:
    case FormulaKind::kIff:
      return std::max(QuantifierRank(f->left), QuantifierRank(f->right));
    case FormulaKind::kExists:
    case FormulaKind::kForall:
      return 1 + QuantifierRank(f->left);
  }
  return 0;
}

namespace {

int TermSize(const TermPtr& t) {
  if (t == nullptr) return 0;
  return 1 + TermSize(t->arg0) + TermSize(t->arg1);
}

}  // namespace

int FormulaSize(const FormulaPtr& f) {
  int size = 1;
  for (const TermPtr& t : f->args) size += TermSize(t);
  if (f->left) size += FormulaSize(f->left);
  if (f->right) size += FormulaSize(f->right);
  return size;
}

bool MentionsDatabase(const FormulaPtr& f) {
  if (f->kind == FormulaKind::kRelation) return true;
  if (f->kind == FormulaKind::kPred && f->pred == PredKind::kAdom) return true;
  if ((f->kind == FormulaKind::kExists || f->kind == FormulaKind::kForall) &&
      f->range != QuantRange::kAll) {
    return true;  // restricted ranges refer to the active domain
  }
  if (f->left && MentionsDatabase(f->left)) return true;
  if (f->right && MentionsDatabase(f->right)) return true;
  return false;
}

bool StructurallyEqual(const TermPtr& a, const TermPtr& b) {
  if (a == b) return true;
  if (a == nullptr || b == nullptr) return false;
  if (a->kind != b->kind || a->var != b->var || a->text != b->text ||
      a->letter != b->letter) {
    return false;
  }
  return StructurallyEqual(a->arg0, b->arg0) &&
         StructurallyEqual(a->arg1, b->arg1);
}

bool StructurallyEqual(const FormulaPtr& a, const FormulaPtr& b) {
  if (a == b) return true;
  if (a == nullptr || b == nullptr) return false;
  if (a->kind != b->kind || a->pred != b->pred || a->letter != b->letter ||
      a->pattern != b->pattern || a->syntax != b->syntax ||
      a->distance != b->distance || a->relation != b->relation ||
      a->var != b->var || a->range != b->range ||
      a->args.size() != b->args.size()) {
    return false;
  }
  for (size_t i = 0; i < a->args.size(); ++i) {
    if (!StructurallyEqual(a->args[i], b->args[i])) return false;
  }
  if ((a->left == nullptr) != (b->left == nullptr)) return false;
  if (a->left && !StructurallyEqual(a->left, b->left)) return false;
  if ((a->right == nullptr) != (b->right == nullptr)) return false;
  if (a->right && !StructurallyEqual(a->right, b->right)) return false;
  return true;
}

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

uint64_t HashMix(uint64_t h, uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h * kFnvPrime;
}

uint64_t HashString(uint64_t h, const std::string& s) {
  h = HashMix(h, s.size());
  for (unsigned char c : s) h = HashMix(h, c);
  return h;
}

}  // namespace

uint64_t StructuralHash(const TermPtr& t) {
  if (t == nullptr) return kFnvOffset;
  uint64_t h = HashMix(0x7e47u, static_cast<uint64_t>(t->kind));
  h = HashString(h, t->var);
  h = HashString(h, t->text);
  h = HashMix(h, static_cast<unsigned char>(t->letter));
  h = HashMix(h, StructuralHash(t->arg0));
  h = HashMix(h, StructuralHash(t->arg1));
  return h;
}

uint64_t StructuralHash(const FormulaPtr& f) {
  if (f == nullptr) return kFnvOffset;
  uint64_t h = HashMix(0xf0a4u, static_cast<uint64_t>(f->kind));
  h = HashMix(h, static_cast<uint64_t>(f->pred));
  h = HashMix(h, static_cast<unsigned char>(f->letter));
  h = HashString(h, f->pattern);
  h = HashMix(h, static_cast<uint64_t>(f->syntax));
  h = HashMix(h, static_cast<uint64_t>(f->distance));
  h = HashString(h, f->relation);
  h = HashString(h, f->var);
  h = HashMix(h, static_cast<uint64_t>(f->range));
  h = HashMix(h, f->args.size());
  for (const TermPtr& t : f->args) h = HashMix(h, StructuralHash(t));
  h = HashMix(h, StructuralHash(f->left));
  h = HashMix(h, StructuralHash(f->right));
  return h;
}

TermPtr SubstituteVars(const TermPtr& t,
                       const std::map<std::string, TermPtr>& map) {
  switch (t->kind) {
    case TermKind::kVar: {
      auto it = map.find(t->var);
      return it == map.end() ? t : it->second;
    }
    case TermKind::kConst:
      return t;
    case TermKind::kAppend:
      return TAppend(t->letter, SubstituteVars(t->arg0, map));
    case TermKind::kPrepend:
      return TPrepend(t->letter, SubstituteVars(t->arg0, map));
    case TermKind::kTrim:
      return TTrim(t->letter, SubstituteVars(t->arg0, map));
    case TermKind::kLcp:
      return TLcp(SubstituteVars(t->arg0, map), SubstituteVars(t->arg1, map));
    case TermKind::kInsert:
      return TInsert(t->letter, SubstituteVars(t->arg0, map),
                     SubstituteVars(t->arg1, map));
    case TermKind::kConcat:
      return TConcat(SubstituteVars(t->arg0, map),
                     SubstituteVars(t->arg1, map));
  }
  return t;
}

FormulaPtr SubstituteVarsQF(const FormulaPtr& f,
                            const std::map<std::string, TermPtr>& map) {
  assert(f->kind != FormulaKind::kExists && f->kind != FormulaKind::kForall &&
         "SubstituteVarsQF is for quantifier-free formulas");
  Formula out = *f;
  for (TermPtr& t : out.args) t = SubstituteVars(t, map);
  if (out.left) out.left = SubstituteVarsQF(f->left, map);
  if (out.right) out.right = SubstituteVarsQF(f->right, map);
  return std::make_shared<const Formula>(std::move(out));
}

namespace {

std::string QuoteLiteral(const std::string& s) {
  std::string out = "'";
  for (char c : s) {
    if (c == '\'' || c == '\\') out += '\\';
    out += c;
  }
  out += "'";
  return out;
}

const char* RangeSuffix(QuantRange range) {
  switch (range) {
    case QuantRange::kAll:
      return "";
    case QuantRange::kAdom:
      return " in adom";
    case QuantRange::kPrefixDom:
      return " pre adom";
    case QuantRange::kLenDom:
      return " len adom";
  }
  return "";
}

const char* SyntaxName(PatternSyntax syntax) {
  switch (syntax) {
    case PatternSyntax::kLikePattern:
      return "like";
    case PatternSyntax::kRegex:
      return "regex";
    case PatternSyntax::kSimilar:
      return "similar";
  }
  return "regex";
}

std::string PredToString(const Formula& f) {
  auto arg = [&](int i) { return ToString(f.args[i]); };
  switch (f.pred) {
    case PredKind::kEq:
      return arg(0) + " = " + arg(1);
    case PredKind::kPrefix:
      return arg(0) + " <= " + arg(1);
    case PredKind::kStrictPrefix:
      return arg(0) + " < " + arg(1);
    case PredKind::kOneStep:
      return "step(" + arg(0) + ", " + arg(1) + ")";
    case PredKind::kLast:
      return std::string("last[") + f.letter + "](" + arg(0) + ")";
    case PredKind::kEqLen:
      return "eqlen(" + arg(0) + ", " + arg(1) + ")";
    case PredKind::kLeqLen:
      return "leqlen(" + arg(0) + ", " + arg(1) + ")";
    case PredKind::kLexLeq:
      return "lexleq(" + arg(0) + ", " + arg(1) + ")";
    case PredKind::kAdom:
      return "adom(" + arg(0) + ")";
    case PredKind::kMember:
      return std::string("member(") + arg(0) + ", " +
             QuoteLiteral(f.pattern) + ", " + SyntaxName(f.syntax) + ")";
    case PredKind::kSuffixIn:
      return std::string("suffixin(") + arg(0) + ", " + arg(1) + ", " +
             QuoteLiteral(f.pattern) + ", " + SyntaxName(f.syntax) + ")";
    case PredKind::kLike:
      return "like(" + arg(0) + ", " + QuoteLiteral(f.pattern) + ")";
    case PredKind::kNear:
      return arg(0) + " ~" + std::to_string(f.distance) + " " +
             QuoteLiteral(f.pattern);
  }
  return "?";
}

}  // namespace

std::string ToString(const TermPtr& t) {
  switch (t->kind) {
    case TermKind::kVar:
      return t->var;
    case TermKind::kConst:
      return QuoteLiteral(t->text);
    case TermKind::kAppend:
      return std::string("append[") + t->letter + "](" + ToString(t->arg0) +
             ")";
    case TermKind::kPrepend:
      return std::string("prepend[") + t->letter + "](" + ToString(t->arg0) +
             ")";
    case TermKind::kTrim:
      return std::string("trim[") + t->letter + "](" + ToString(t->arg0) + ")";
    case TermKind::kLcp:
      return "lcp(" + ToString(t->arg0) + ", " + ToString(t->arg1) + ")";
    case TermKind::kInsert:
      return std::string("insert[") + t->letter + "](" + ToString(t->arg0) +
             ", " + ToString(t->arg1) + ")";
    case TermKind::kConcat:
      return "concat(" + ToString(t->arg0) + ", " + ToString(t->arg1) + ")";
  }
  return "?";
}

namespace {

// Quantifiers scope over everything to their right in the concrete syntax,
// so a quantified formula appearing as the LEFT operand of a binary
// connective needs explicit parentheses or re-parsing would regroup.
std::string ToStringAsLeftOperand(const FormulaPtr& f) {
  if (f->kind == FormulaKind::kExists || f->kind == FormulaKind::kForall) {
    return "(" + ToString(f) + ")";
  }
  return ToString(f);
}

}  // namespace

std::string ToString(const FormulaPtr& f) {
  switch (f->kind) {
    case FormulaKind::kTrue:
      return "true";
    case FormulaKind::kFalse:
      return "false";
    case FormulaKind::kPred:
      return PredToString(*f);
    case FormulaKind::kRelation: {
      std::string out = f->relation + "(";
      for (size_t i = 0; i < f->args.size(); ++i) {
        if (i > 0) out += ", ";
        out += ToString(f->args[i]);
      }
      return out + ")";
    }
    case FormulaKind::kNot:
      return "!(" + ToString(f->left) + ")";
    case FormulaKind::kAnd:
      return "(" + ToStringAsLeftOperand(f->left) + " & " +
             ToString(f->right) + ")";
    case FormulaKind::kOr:
      return "(" + ToStringAsLeftOperand(f->left) + " | " +
             ToString(f->right) + ")";
    case FormulaKind::kImplies:
      return "(" + ToStringAsLeftOperand(f->left) + " -> " +
             ToString(f->right) + ")";
    case FormulaKind::kIff:
      return "(" + ToStringAsLeftOperand(f->left) + " <-> " +
             ToString(f->right) + ")";
    case FormulaKind::kExists:
      return "exists " + f->var + RangeSuffix(f->range) + ". (" +
             ToString(f->left) + ")";
    case FormulaKind::kForall:
      return "forall " + f->var + RangeSuffix(f->range) + ". (" +
             ToString(f->left) + ")";
  }
  return "?";
}

}  // namespace strq
