#ifndef STRQ_LOGIC_AST_H_
#define STRQ_LOGIC_AST_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

namespace strq {

// -------------------------------------------------------------------------
// Terms
// -------------------------------------------------------------------------

// Term formers of the surface language. Composite terms are unnested by the
// evaluation engines into graph atoms with fresh variables.
enum class TermKind {
  kVar,      // a variable
  kConst,    // a string literal over Σ (ε allowed)
  kAppend,   // l_a(t) = t·a                     (in S)
  kPrepend,  // f_a(t) = a·t                     (in S_left, S_len)
  kTrim,     // t − a = TRIM_a(t)                (in S_left, S_len)
  kLcp,      // t1 ∩ t2, longest common prefix   (definable in S)
  kInsert,   // insert_a(t1, t2) = t1·a·(t2−t1) if t1 ≼ t2, else ε
             //                                  (the Conclusion's extension;
             //                                   in S_insert)
  kConcat,   // t1 · t2                          (only in RC_concat)
};

struct Term;
using TermPtr = std::shared_ptr<const Term>;

struct Term {
  TermKind kind;
  std::string var;    // kVar: variable name
  std::string text;   // kConst: literal value
  char letter = '\0'; // kAppend/kPrepend/kTrim: the symbol a
  TermPtr arg0;       // unary/binary child
  TermPtr arg1;       // binary second child (kLcp, kConcat)
};

TermPtr TVar(std::string name);
TermPtr TConst(std::string value);
TermPtr TAppend(char letter, TermPtr t);
TermPtr TPrepend(char letter, TermPtr t);
TermPtr TTrim(char letter, TermPtr t);
TermPtr TLcp(TermPtr a, TermPtr b);
TermPtr TInsert(char letter, TermPtr prefix, TermPtr subject);
TermPtr TConcat(TermPtr a, TermPtr b);

// -------------------------------------------------------------------------
// Formulas
// -------------------------------------------------------------------------

// Built-in predicates (over the interpreted structure; database relations
// are a separate formula kind).
enum class PredKind {
  kEq,            // t1 = t2
  kPrefix,        // t1 ≼ t2
  kStrictPrefix,  // t1 ≺ t2
  kOneStep,       // t1 < t2: t2 extends t1 by exactly one symbol
  kLast,          // L_a(t): last symbol of t is `letter`
  kEqLen,         // el(t1, t2): |t1| = |t2|      (S_len)
  kLeqLen,        // |t1| <= |t2|                 (S_len)
  kLexLeq,        // t1 ≤_lex t2                  (definable in S, Section 4)
  kAdom,          // t ∈ adom(D): active-domain membership (RC-level)
  kMember,        // t ∈ L(pattern)
  kSuffixIn,      // P_L(t1, t2): t1 ≼ t2 ∧ t2 − t1 ∈ L(pattern)  (S_reg)
  kLike,          // t LIKE pattern (sugar for kMember with LIKE syntax)
  kNear,          // t ~k word: edit_distance(t, word) <= distance. The
                  // neighborhood is a finite language, hence star-free,
                  // hence in S; compiled via sparse Levenshtein automata.
};

// How a pattern string attached to kMember/kSuffixIn/kLike is interpreted.
enum class PatternSyntax {
  kLikePattern,  // SQL LIKE: % and _
  kRegex,        // classic regular expression
  kSimilar,      // SQL3 SIMILAR TO (regex + % and _), Section 4
};

enum class FormulaKind {
  kTrue,
  kFalse,
  kPred,      // built-in predicate applied to terms
  kRelation,  // schema relation R(t̄)
  kNot,
  kAnd,
  kOr,
  kImplies,
  kIff,
  kExists,
  kForall,
};

// Quantifier ranges (Sections 5.1, 5.2). Restricted ranges are definable
// sugar; the engines either desugar them (automata engine) or use them as
// the enumeration recipe (restricted evaluator).
enum class QuantRange {
  kAll,        // plain ∃x / ∀x over all of Σ*
  kAdom,       // ∃x ∈ dom: over the active domain
  kPrefixDom,  // ∃x ≼ dom: over prefixes of adom ∪ free-variable values
  kLenDom,     // ∃|x| ≤ adom: strings no longer than the longest in
               // adom ∪ free-variable values (needs S_len)
};

struct Formula;
using FormulaPtr = std::shared_ptr<const Formula>;

struct Formula {
  FormulaKind kind;

  // kPred / kRelation arguments.
  std::vector<TermPtr> args;
  PredKind pred = PredKind::kEq;   // kPred
  char letter = '\0';              // kPred kLast
  std::string pattern;             // kPred kMember/kSuffixIn/kLike/kNear
  PatternSyntax syntax = PatternSyntax::kRegex;
  int distance = 0;                // kPred kNear: the edit budget k
  std::string relation;            // kRelation: relation name

  // Connectives: kNot uses left only; kAnd/kOr/kImplies/kIff use both.
  FormulaPtr left;
  FormulaPtr right;

  // Quantifiers: bound variable + range; body stored in `left`.
  std::string var;
  QuantRange range = QuantRange::kAll;
};

FormulaPtr FTrue();
FormulaPtr FFalse();
FormulaPtr FPred(PredKind pred, std::vector<TermPtr> args);
FormulaPtr FLast(char letter, TermPtr t);
FormulaPtr FMember(TermPtr t, std::string pattern, PatternSyntax syntax);
FormulaPtr FSuffixIn(TermPtr t1, TermPtr t2, std::string pattern,
                     PatternSyntax syntax);
FormulaPtr FLike(TermPtr t, std::string pattern);
// t ~distance word (bounded-edit-distance similarity atom).
FormulaPtr FNear(TermPtr t, std::string word, int distance);
FormulaPtr FRelation(std::string name, std::vector<TermPtr> args);
FormulaPtr FNot(FormulaPtr f);
FormulaPtr FAnd(FormulaPtr a, FormulaPtr b);
FormulaPtr FOr(FormulaPtr a, FormulaPtr b);
FormulaPtr FImplies(FormulaPtr a, FormulaPtr b);
FormulaPtr FIff(FormulaPtr a, FormulaPtr b);
FormulaPtr FExists(std::string var, FormulaPtr body,
                   QuantRange range = QuantRange::kAll);
FormulaPtr FForall(std::string var, FormulaPtr body,
                   QuantRange range = QuantRange::kAll);

// Convenience n-ary conjunction/disjunction (kTrue/kFalse for empty input).
FormulaPtr FAndAll(const std::vector<FormulaPtr>& fs);
FormulaPtr FOrAll(const std::vector<FormulaPtr>& fs);

// -------------------------------------------------------------------------
// Analyses
// -------------------------------------------------------------------------

// Free variables of a term / formula, sorted.
std::set<std::string> TermVars(const TermPtr& t);
std::set<std::string> FreeVars(const FormulaPtr& f);

// Quantifier rank (nesting depth of quantifiers); drives the effective
// constants of Lemmas 1 and 2 in the safety module.
int QuantifierRank(const FormulaPtr& f);

// Total number of nodes; used for budgets and test diagnostics.
int FormulaSize(const FormulaPtr& f);

// Does the formula mention any database relation (or adom)?
bool MentionsDatabase(const FormulaPtr& f);

// Deep structural equality (no alpha-renaming: variable names matter).
// Shared subterms compare by pointer first, so hash-consed trees are cheap.
bool StructurallyEqual(const TermPtr& a, const TermPtr& b);
bool StructurallyEqual(const FormulaPtr& a, const FormulaPtr& b);

// A structural hash consistent with StructurallyEqual: equal trees hash
// equal. Used as the plan-cache key and by the hash-consed plan IR; treat
// collisions as possible (confirm with StructurallyEqual).
uint64_t StructuralHash(const TermPtr& t);
uint64_t StructuralHash(const FormulaPtr& f);

// Replaces free variables by terms in a quantifier-free formula (used by
// the calculus→algebra translation to rewrite atoms over column variables).
// Variables without a mapping are kept.
TermPtr SubstituteVars(const TermPtr& t,
                       const std::map<std::string, TermPtr>& map);
FormulaPtr SubstituteVarsQF(const FormulaPtr& f,
                            const std::map<std::string, TermPtr>& map);

// Renders the formula in the concrete syntax accepted by logic/parser.h.
std::string ToString(const FormulaPtr& f);
std::string ToString(const TermPtr& t);

}  // namespace strq

#endif  // STRQ_LOGIC_AST_H_
