#include "logic/simplify.h"

#include <optional>

#include "base/string_ops.h"

namespace strq {

namespace {

// Folds a term whose leaves are all constants to its value; nullopt if any
// variable occurs (concatenation folds too — it is plain string semantics).
std::optional<std::string> FoldTerm(const TermPtr& t) {
  switch (t->kind) {
    case TermKind::kVar:
      return std::nullopt;
    case TermKind::kConst:
      return t->text;
    case TermKind::kAppend: {
      auto v = FoldTerm(t->arg0);
      if (!v) return std::nullopt;
      return AppendLast(*v, t->letter);
    }
    case TermKind::kPrepend: {
      auto v = FoldTerm(t->arg0);
      if (!v) return std::nullopt;
      return PrependFirst(*v, t->letter);
    }
    case TermKind::kTrim: {
      auto v = FoldTerm(t->arg0);
      if (!v) return std::nullopt;
      return TrimLeading(*v, t->letter);
    }
    case TermKind::kLcp: {
      auto a = FoldTerm(t->arg0);
      auto b = FoldTerm(t->arg1);
      if (!a || !b) return std::nullopt;
      return LongestCommonPrefix(*a, *b);
    }
    case TermKind::kInsert: {
      auto a = FoldTerm(t->arg0);
      auto b = FoldTerm(t->arg1);
      if (!a || !b) return std::nullopt;
      return InsertAfterPrefix(*a, *b, t->letter);
    }
    case TermKind::kConcat: {
      auto a = FoldTerm(t->arg0);
      auto b = FoldTerm(t->arg1);
      if (!a || !b) return std::nullopt;
      return *a + *b;
    }
  }
  return std::nullopt;
}

// Replaces a fully-foldable term by its constant (leaves others intact).
TermPtr SimplifyTerm(const TermPtr& t) {
  if (auto v = FoldTerm(t); v.has_value()) {
    if (t->kind == TermKind::kConst) return t;
    return TConst(*v);
  }
  Term out = *t;
  if (out.arg0) out.arg0 = SimplifyTerm(out.arg0);
  if (out.arg1) out.arg1 = SimplifyTerm(out.arg1);
  return std::make_shared<const Term>(std::move(out));
}

bool IsTrue(const FormulaPtr& f) { return f->kind == FormulaKind::kTrue; }
bool IsFalse(const FormulaPtr& f) { return f->kind == FormulaKind::kFalse; }

// Decides a ground atom over database-free predicates; nullopt if any
// argument has variables or the predicate needs the database / a pattern
// compiler (kept: patterns need an alphabet).
std::optional<bool> FoldAtom(const Formula& f) {
  if (f.pred == PredKind::kAdom || f.pred == PredKind::kMember ||
      f.pred == PredKind::kSuffixIn || f.pred == PredKind::kLike ||
      f.pred == PredKind::kLexLeq || f.pred == PredKind::kNear) {
    // kLexLeq needs the alphabet order; patterns (and ~k words, whose
    // letters the signature checker validates) need the alphabet.
    return std::nullopt;
  }
  std::vector<std::string> args;
  for (const TermPtr& t : f.args) {
    auto v = FoldTerm(t);
    if (!v) return std::nullopt;
    args.push_back(*std::move(v));
  }
  switch (f.pred) {
    case PredKind::kEq:
      return args[0] == args[1];
    case PredKind::kPrefix:
      return IsPrefix(args[0], args[1]);
    case PredKind::kStrictPrefix:
      return IsStrictPrefix(args[0], args[1]);
    case PredKind::kOneStep:
      return IsOneStepExtension(args[0], args[1]);
    case PredKind::kLast:
      return LastSymbolIs(args[0], f.letter);
    case PredKind::kEqLen:
      return EqualLength(args[0], args[1]);
    case PredKind::kLeqLen:
      return args[0].size() <= args[1].size();
    default:
      return std::nullopt;
  }
}

// Structural equality for the idempotence rewrites; the shared definition
// lives in logic/ast.h so the planner's rules see the same relation.
bool SameFormula(const FormulaPtr& a, const FormulaPtr& b) {
  return StructurallyEqual(a, b);
}

}  // namespace

FormulaPtr Simplify(const FormulaPtr& f) {
  switch (f->kind) {
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
      return f;
    case FormulaKind::kPred: {
      if (auto v = FoldAtom(*f); v.has_value()) {
        return *v ? FTrue() : FFalse();
      }
      Formula out = *f;
      for (TermPtr& t : out.args) t = SimplifyTerm(t);
      return std::make_shared<const Formula>(std::move(out));
    }
    case FormulaKind::kRelation: {
      Formula out = *f;
      for (TermPtr& t : out.args) t = SimplifyTerm(t);
      return std::make_shared<const Formula>(std::move(out));
    }
    case FormulaKind::kNot: {
      FormulaPtr inner = Simplify(f->left);
      if (IsTrue(inner)) return FFalse();
      if (IsFalse(inner)) return FTrue();
      if (inner->kind == FormulaKind::kNot) return inner->left;
      return FNot(std::move(inner));
    }
    case FormulaKind::kAnd: {
      FormulaPtr a = Simplify(f->left);
      FormulaPtr b = Simplify(f->right);
      if (IsFalse(a) || IsFalse(b)) return FFalse();
      if (IsTrue(a)) return b;
      if (IsTrue(b)) return a;
      if (SameFormula(a, b)) return a;
      return FAnd(std::move(a), std::move(b));
    }
    case FormulaKind::kOr: {
      FormulaPtr a = Simplify(f->left);
      FormulaPtr b = Simplify(f->right);
      if (IsTrue(a) || IsTrue(b)) return FTrue();
      if (IsFalse(a)) return b;
      if (IsFalse(b)) return a;
      if (SameFormula(a, b)) return a;
      return FOr(std::move(a), std::move(b));
    }
    case FormulaKind::kImplies: {
      FormulaPtr a = Simplify(f->left);
      FormulaPtr b = Simplify(f->right);
      if (IsFalse(a) || IsTrue(b)) return FTrue();
      if (IsTrue(a)) return b;
      if (IsFalse(b)) return Simplify(FNot(a));
      if (SameFormula(a, b)) return FTrue();
      return FImplies(std::move(a), std::move(b));
    }
    case FormulaKind::kIff: {
      FormulaPtr a = Simplify(f->left);
      FormulaPtr b = Simplify(f->right);
      if (IsTrue(a)) return b;
      if (IsTrue(b)) return a;
      if (IsFalse(a)) return Simplify(FNot(b));
      if (IsFalse(b)) return Simplify(FNot(a));
      if (SameFormula(a, b)) return FTrue();
      return FIff(std::move(a), std::move(b));
    }
    case FormulaKind::kExists:
    case FormulaKind::kForall: {
      FormulaPtr body = Simplify(f->left);
      bool unused = FreeVars(body).count(f->var) == 0;
      // Σ* is non-empty and the kLenDom range always contains ε; kAdom and
      // parameterless kPrefixDom ranges can be empty, so those quantifiers
      // must survive even with constant bodies.
      bool range_nonempty = f->range == QuantRange::kAll ||
                            f->range == QuantRange::kLenDom;
      if (range_nonempty && (IsTrue(body) || IsFalse(body))) return body;
      if (range_nonempty && unused) return body;
      if (f->kind == FormulaKind::kExists) {
        return FExists(f->var, std::move(body), f->range);
      }
      return FForall(f->var, std::move(body), f->range);
    }
  }
  return f;
}

namespace {

FormulaPtr Nnf(const FormulaPtr& f, bool negated) {
  switch (f->kind) {
    case FormulaKind::kTrue:
      return negated ? FFalse() : f;
    case FormulaKind::kFalse:
      return negated ? FTrue() : f;
    case FormulaKind::kPred:
    case FormulaKind::kRelation:
      return negated ? FNot(f) : f;
    case FormulaKind::kNot:
      return Nnf(f->left, !negated);
    case FormulaKind::kAnd:
      return negated ? FOr(Nnf(f->left, true), Nnf(f->right, true))
                     : FAnd(Nnf(f->left, false), Nnf(f->right, false));
    case FormulaKind::kOr:
      return negated ? FAnd(Nnf(f->left, true), Nnf(f->right, true))
                     : FOr(Nnf(f->left, false), Nnf(f->right, false));
    case FormulaKind::kImplies:
      // a -> b ≡ ¬a ∨ b.
      return negated ? FAnd(Nnf(f->left, false), Nnf(f->right, true))
                     : FOr(Nnf(f->left, true), Nnf(f->right, false));
    case FormulaKind::kIff:
      // a <-> b ≡ (a ∧ b) ∨ (¬a ∧ ¬b); negation swaps one side.
      if (negated) {
        return FOr(FAnd(Nnf(f->left, false), Nnf(f->right, true)),
                   FAnd(Nnf(f->left, true), Nnf(f->right, false)));
      }
      return FOr(FAnd(Nnf(f->left, false), Nnf(f->right, false)),
                 FAnd(Nnf(f->left, true), Nnf(f->right, true)));
    case FormulaKind::kExists:
      return negated ? FForall(f->var, Nnf(f->left, true), f->range)
                     : FExists(f->var, Nnf(f->left, false), f->range);
    case FormulaKind::kForall:
      return negated ? FExists(f->var, Nnf(f->left, true), f->range)
                     : FForall(f->var, Nnf(f->left, false), f->range);
  }
  return f;
}

}  // namespace

FormulaPtr ToNegationNormalForm(const FormulaPtr& f) {
  return Nnf(f, false);
}

bool IsNegationNormalForm(const FormulaPtr& f) {
  switch (f->kind) {
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
    case FormulaKind::kPred:
    case FormulaKind::kRelation:
      return true;
    case FormulaKind::kNot:
      return f->left->kind == FormulaKind::kPred ||
             f->left->kind == FormulaKind::kRelation;
    case FormulaKind::kAnd:
    case FormulaKind::kOr:
      return IsNegationNormalForm(f->left) && IsNegationNormalForm(f->right);
    case FormulaKind::kImplies:
    case FormulaKind::kIff:
      return false;
    case FormulaKind::kExists:
    case FormulaKind::kForall:
      return IsNegationNormalForm(f->left);
  }
  return false;
}

}  // namespace strq
