#include "logic/signature.h"

#include "automata/like.h"
#include "automata/regex.h"
#include "automata/starfree.h"

namespace strq {

const char* StructureName(StructureId s) {
  switch (s) {
    case StructureId::kS:
      return "S";
    case StructureId::kSLeft:
      return "S_left";
    case StructureId::kSReg:
      return "S_reg";
    case StructureId::kSInsert:
      return "S_ins";
    case StructureId::kSLen:
      return "S_len";
    case StructureId::kConcat:
      return "S_concat";
  }
  return "?";
}

bool StructureIncludes(StructureId in, StructureId language) {
  if (in == language) return true;
  switch (in) {
    case StructureId::kS:
      return false;
    case StructureId::kSLeft:
    case StructureId::kSReg:
      return language == StructureId::kS;
    case StructureId::kSInsert:
      return language == StructureId::kS || language == StructureId::kSLeft;
    case StructureId::kSLen:
      return language != StructureId::kConcat &&
             language != StructureId::kSInsert;
    case StructureId::kConcat:
      return true;
  }
  return false;
}

namespace {

Result<Dfa> CompilePattern(const std::string& pattern, PatternSyntax syntax,
                           const Alphabet& alphabet) {
  switch (syntax) {
    case PatternSyntax::kLikePattern:
      return CompileLike(pattern, alphabet);
    case PatternSyntax::kRegex:
      return CompileRegex(pattern, alphabet);
    case PatternSyntax::kSimilar:
      return CompileSimilar(pattern, alphabet);
  }
  return InvalidArgumentError("unknown pattern syntax");
}

class LanguageChecker {
 public:
  LanguageChecker(StructureId structure, const Alphabet& alphabet)
      : structure_(structure), alphabet_(alphabet) {}

  Status Check(const FormulaPtr& f) {
    switch (f->kind) {
      case FormulaKind::kTrue:
      case FormulaKind::kFalse:
        return Status::Ok();
      case FormulaKind::kPred:
        STRQ_RETURN_IF_ERROR(CheckPred(*f));
        return CheckArgs(*f);
      case FormulaKind::kRelation:
        return CheckArgs(*f);
      case FormulaKind::kNot:
        return Check(f->left);
      case FormulaKind::kAnd:
      case FormulaKind::kOr:
      case FormulaKind::kImplies:
      case FormulaKind::kIff:
        STRQ_RETURN_IF_ERROR(Check(f->left));
        return Check(f->right);
      case FormulaKind::kExists:
      case FormulaKind::kForall:
        if (f->range == QuantRange::kLenDom &&
            !StructureIncludes(structure_, StructureId::kSLen)) {
          return NotInLanguageError(
              "length-restricted quantifier needs S_len, not " +
              std::string(StructureName(structure_)));
        }
        return Check(f->left);
    }
    return InternalError("unknown formula kind");
  }

 private:
  Status CheckArgs(const Formula& f) {
    for (const TermPtr& t : f.args) STRQ_RETURN_IF_ERROR(CheckTerm(t));
    return Status::Ok();
  }

  Status CheckTerm(const TermPtr& t) {
    switch (t->kind) {
      case TermKind::kVar:
        return Status::Ok();
      case TermKind::kConst:
        for (char c : t->text) {
          if (!alphabet_.Contains(c)) {
            return InvalidArgumentError(
                std::string("constant uses character '") + c +
                "' outside the alphabet");
          }
        }
        return Status::Ok();
      case TermKind::kAppend:
        STRQ_RETURN_IF_ERROR(CheckLetter(t->letter));
        return CheckTerm(t->arg0);
      case TermKind::kPrepend:
      case TermKind::kTrim:
        if (!StructureIncludes(structure_, StructureId::kSLeft)) {
          return NotInLanguageError(
              std::string(t->kind == TermKind::kPrepend ? "prepend"
                                                        : "trim") +
              " (f_a) needs S_left or S_len, not " +
              StructureName(structure_));
        }
        STRQ_RETURN_IF_ERROR(CheckLetter(t->letter));
        return CheckTerm(t->arg0);
      case TermKind::kLcp:
        STRQ_RETURN_IF_ERROR(CheckTerm(t->arg0));
        return CheckTerm(t->arg1);
      case TermKind::kInsert:
        if (!StructureIncludes(structure_, StructureId::kSInsert)) {
          return NotInLanguageError(
              "insert_a needs S_ins (the Conclusion's extension) or "
              "RC_concat, not " +
              std::string(StructureName(structure_)));
        }
        STRQ_RETURN_IF_ERROR(CheckLetter(t->letter));
        STRQ_RETURN_IF_ERROR(CheckTerm(t->arg0));
        return CheckTerm(t->arg1);
      case TermKind::kConcat:
        if (structure_ != StructureId::kConcat) {
          return NotInLanguageError(
              "concatenation is only available in RC_concat (and makes the "
              "calculus computationally complete, Proposition 1)");
        }
        STRQ_RETURN_IF_ERROR(CheckTerm(t->arg0));
        return CheckTerm(t->arg1);
    }
    return InternalError("unknown term kind");
  }

  Status CheckLetter(char c) {
    if (!alphabet_.Contains(c)) {
      return InvalidArgumentError(std::string("letter '") + c +
                                  "' outside the alphabet");
    }
    return Status::Ok();
  }

  Status CheckPred(const Formula& f) {
    switch (f.pred) {
      case PredKind::kEq:
      case PredKind::kPrefix:
      case PredKind::kStrictPrefix:
      case PredKind::kOneStep:
      case PredKind::kLexLeq:
      case PredKind::kAdom:
        return Status::Ok();
      case PredKind::kLast:
        return CheckLetter(f.letter);
      case PredKind::kEqLen:
      case PredKind::kLeqLen:
        if (!StructureIncludes(structure_, StructureId::kSLen)) {
          return NotInLanguageError(
              "length comparison (el) needs S_len, not " +
              std::string(StructureName(structure_)));
        }
        return Status::Ok();
      case PredKind::kLike:
        // LIKE languages are star-free, hence in S already (Section 4).
        return Status::Ok();
      case PredKind::kNear:
        // A bounded-edit-distance neighborhood is a finite language, hence
        // star-free, hence in S. Only the word's letters need checking.
        for (char c : f.pattern) STRQ_RETURN_IF_ERROR(CheckLetter(c));
        if (f.distance < 0) {
          return InvalidArgumentError("~k edit budget must be non-negative");
        }
        return Status::Ok();
      case PredKind::kMember:
      case PredKind::kSuffixIn: {
        if (StructureIncludes(structure_, StructureId::kSReg)) {
          return Status::Ok();
        }
        // Over S and S_left only star-free P_L predicates are available.
        STRQ_ASSIGN_OR_RETURN(Dfa lang,
                              CompilePattern(f.pattern, f.syntax, alphabet_));
        STRQ_ASSIGN_OR_RETURN(bool star_free, IsStarFree(lang));
        if (!star_free) {
          return NotInLanguageError(
              "pattern '" + f.pattern +
              "' denotes a non-star-free language; P_L for such L needs "
              "S_reg or S_len, not " +
              StructureName(structure_));
        }
        return Status::Ok();
      }
    }
    return InternalError("unknown predicate");
  }

  StructureId structure_;
  const Alphabet& alphabet_;
};

}  // namespace

Status CheckInLanguage(const FormulaPtr& f, StructureId structure,
                       const Alphabet& alphabet) {
  return LanguageChecker(structure, alphabet).Check(f);
}

Result<StructureId> MinimalStructure(const FormulaPtr& f,
                                     const Alphabet& alphabet) {
  for (StructureId s : {StructureId::kS, StructureId::kSLeft,
                        StructureId::kSReg, StructureId::kSInsert,
                        StructureId::kSLen, StructureId::kConcat}) {
    Status status = CheckInLanguage(f, s, alphabet);
    if (status.ok()) return s;
    if (status.code() != StatusCode::kNotInLanguage) return status;
  }
  return InternalError("formula not even in RC_concat");
}

}  // namespace strq
