// A trie over the active domain (or its prefix closure): Engine B's
// candidate scan becomes DFA-guided traversal of this structure instead of
// a linear pass over rank-bounded candidates. Walking the trie and one or
// more guard DFAs in lockstep prunes a whole subtree the moment every
// string below it is dead in some guard — the DFAFilter pattern from
// RediSearch's levenshtein.h, applied to the refcounted domain counts
// src/incr maintains per revision.
//
// Tries are immutable once built and shared via shared_ptr: the
// DomainProvider hands out one trie per (kind, revision) and sessions
// pinned to old snapshots keep using the trie of their revision while newer
// commits build fresh ones.

#ifndef STRQ_RELATIONAL_DOMAIN_TRIE_H_
#define STRQ_RELATIONAL_DOMAIN_TRIE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "automata/dfa.h"
#include "base/alphabet.h"
#include "base/status.h"

namespace strq {

class DomainTrie {
 public:
  // Builds from a sorted, duplicate-free list of strings over `alphabet`.
  // Strings with foreign characters are rejected.
  static Result<std::shared_ptr<const DomainTrie>> Build(
      const Alphabet& alphabet, const std::vector<std::string>& sorted);

  struct MatchStats {
    int64_t nodes_visited = 0;
    int64_t subtrees_pruned = 0;  // cut points, not strings
    int64_t strings_pruned = 0;   // stored strings skipped via cut subtrees
  };

  // The stored strings accepted by EVERY guard DFA (each a complete DFA
  // over the base alphabet), in sorted order. A subtree is pruned as soon
  // as any guard reaches a state from which no accepting state is
  // reachable. `stats` is optional.
  std::vector<std::string> Matching(const std::vector<const Dfa*>& guards,
                                    MatchStats* stats) const;

  // Whether `s` is one of the stored strings (false for strings with
  // characters outside the alphabet).
  bool Contains(const std::string& s) const;

  // Number of stored strings / all stored strings in sorted order.
  int64_t size() const { return terminal_count_; }
  const Alphabet& alphabet() const { return alphabet_; }

 private:
  struct Node {
    Symbol symbol = 0;        // edge label from the parent (root: unused)
    bool terminal = false;    // a stored string ends here
    int64_t subtree_terminals = 0;  // stored strings in this subtree
    int first_child = -1;     // children are contiguous, sorted by symbol
    int num_children = 0;
  };

  explicit DomainTrie(Alphabet alphabet) : alphabet_(std::move(alphabet)) {}

  Alphabet alphabet_;
  std::vector<Node> nodes_;  // nodes_[0] is the root
  int64_t terminal_count_ = 0;
};

}  // namespace strq

#endif  // STRQ_RELATIONAL_DOMAIN_TRIE_H_
