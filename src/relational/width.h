#ifndef STRQ_RELATIONAL_WIDTH_H_
#define STRQ_RELATIONAL_WIDTH_H_

#include <map>
#include <string>

#include "base/status.h"
#include "relational/database.h"

namespace strq {

// Active-domain width (Section 5.2). The width of adom(D) is the maximal
// size of a subset of adom(D) whose elements are pairwise comparable by the
// prefix relation — i.e. the longest ≼-chain. Proposition 5's MSO encoding
// works over databases of bounded width, and the paper notes that every
// database can be transformed into an isomorphic (w.r.t. the SC-predicates)
// database of width 1.

// The width of adom(D): longest chain in the prefix order. O(n²) over the
// sorted active domain.
int AdomWidth(const Database& db);

// The paper's width-1 transformation: relabels every active-domain string
// to a distinct 0^i (a single ≼-chain), preserving all SC-relations up to
// isomorphism. Strings are ranked in sorted order, starting from 0^1 so ε
// is never produced. Also returns the mapping used.
struct WidthOneResult {
  Database database;
  std::map<std::string, std::string> mapping;  // original -> 0^i
};
Result<WidthOneResult> MakeWidthOne(const Database& db);

}  // namespace strq

#endif  // STRQ_RELATIONAL_WIDTH_H_
