#ifndef STRQ_RELATIONAL_TSV_H_
#define STRQ_RELATIONAL_TSV_H_

#include <istream>
#include <string>

#include "base/status.h"
#include "relational/database.h"

namespace strq {

// Tab-separated loading and saving of relation instances.
//
// Format: one tuple per line, fields separated by single tabs. An empty
// field is the empty string ε; there is no quoting (strings over the
// database alphabets never contain tabs or newlines because alphabets are
// printable character sets). Blank lines and lines starting with '#' are
// skipped. All rows must have the same number of fields, which becomes the
// relation's arity.

// Parses a relation from a stream; every string must be over `alphabet`.
Result<Relation> ReadTsvRelation(std::istream& in, const Alphabet& alphabet);

// Loads `path` and adds (or replaces) the relation in `db`.
Status LoadTsvRelation(Database& db, const std::string& name,
                       const std::string& path);

// Writes the relation to the stream in the same format.
void WriteTsvRelation(const Relation& relation, std::ostream& out);

// Saves a relation of `db` to `path`.
Status SaveTsvRelation(const Database& db, const std::string& name,
                       const std::string& path);

}  // namespace strq

#endif  // STRQ_RELATIONAL_TSV_H_
