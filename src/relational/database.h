#ifndef STRQ_RELATIONAL_DATABASE_H_
#define STRQ_RELATIONAL_DATABASE_H_

#include <map>
#include <string>
#include <vector>

#include "base/alphabet.h"
#include "base/status.h"

namespace strq {

// A database tuple: strings over the database's alphabet.
using Tuple = std::vector<std::string>;

// A finite relation instance: a sorted, duplicate-free set of equal-arity
// tuples. Arity 0 is allowed (the two 0-ary relations are the classical
// "true" {()} and "false" {}).
class Relation {
 public:
  static Result<Relation> Create(int arity, std::vector<Tuple> tuples);
  static Relation Empty(int arity);

  int arity() const { return arity_; }
  size_t size() const { return tuples_.size(); }
  const std::vector<Tuple>& tuples() const { return tuples_; }
  bool Contains(const Tuple& t) const;

  // In-place single-tuple mutation, preserving the sorted/dup-free
  // invariant. Returns true iff the relation changed (the tuple was absent
  // resp. present); arity mismatches are errors.
  Result<bool> Insert(const Tuple& t);
  Result<bool> Remove(const Tuple& t);

  // All strings appearing in some tuple, sorted and deduplicated.
  std::vector<std::string> ActiveDomain() const;

  friend bool operator==(const Relation& a, const Relation& b) {
    return a.arity_ == b.arity_ && a.tuples_ == b.tuples_;
  }

 private:
  Relation(int arity, std::vector<Tuple> tuples)
      : arity_(arity), tuples_(std::move(tuples)) {}

  int arity_;
  std::vector<Tuple> tuples_;
};

// A database instance: a fixed alphabet plus named relations (the schema SC
// is implicit in the relation names and arities).
class Database {
 public:
  explicit Database(Alphabet alphabet) : alphabet_(std::move(alphabet)) {}

  const Alphabet& alphabet() const { return alphabet_; }

  // Adds (or replaces) a relation; every string must be over the alphabet.
  Status AddRelation(const std::string& name, Relation relation);

  // Convenience: build the relation from raw tuples.
  Status AddRelation(const std::string& name, int arity,
                     std::vector<Tuple> tuples);

  // Single-tuple mutation against an existing relation. Returns true iff
  // the database changed; the revision is bumped only in that case, so
  // no-op writes never invalidate revision-keyed caches. The relation must
  // exist (create it with AddRelation first) and the tuple must match its
  // arity and the alphabet.
  Result<bool> InsertTuple(const std::string& name, const Tuple& t);
  Result<bool> DeleteTuple(const std::string& name, const Tuple& t);

  // nullptr if absent.
  const Relation* Find(const std::string& name) const;

  const std::map<std::string, Relation>& relations() const {
    return relations_;
  }

  // adom(D): all strings appearing anywhere in the database, sorted.
  std::vector<std::string> ActiveDomain() const;

  // max length of a string in adom(D); 0 for the empty database.
  size_t MaxAdomLength() const;

  // Content revision: 0 for an empty database, otherwise a process-unique
  // value bumped on every AddRelation. Caches key compiled table/adom
  // automata on "<name>:<revision>" so entries for stale contents are
  // simply never looked up again (revisions are never reused, so keys
  // cannot alias — copies of a database share the revision of the content
  // they share).
  int64_t revision() const { return revision_; }

 private:
  Alphabet alphabet_;
  std::map<std::string, Relation> relations_;
  int64_t revision_ = 0;
};

}  // namespace strq

#endif  // STRQ_RELATIONAL_DATABASE_H_
