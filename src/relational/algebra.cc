#include "relational/algebra.h"

#include <utility>

namespace strq {

namespace {

RaPtr MakeRa(RaExpr e) { return std::make_shared<const RaExpr>(std::move(e)); }

}  // namespace

RaPtr RaScan(std::string relation) {
  return MakeRa({.kind = RaKind::kScan, .relation = std::move(relation)});
}
RaPtr RaEpsilon() { return MakeRa({.kind = RaKind::kEpsilon}); }
RaPtr RaSelect(FormulaPtr condition, RaPtr input) {
  return MakeRa({.kind = RaKind::kSelect,
                 .condition = std::move(condition),
                 .left = std::move(input)});
}
RaPtr RaProject(std::vector<int> columns, RaPtr input) {
  return MakeRa({.kind = RaKind::kProject,
                 .columns = std::move(columns),
                 .left = std::move(input)});
}
RaPtr RaProduct(RaPtr left, RaPtr right) {
  return MakeRa({.kind = RaKind::kProduct,
                 .left = std::move(left),
                 .right = std::move(right)});
}
RaPtr RaUnion(RaPtr left, RaPtr right) {
  return MakeRa({.kind = RaKind::kUnion,
                 .left = std::move(left),
                 .right = std::move(right)});
}
RaPtr RaDifference(RaPtr left, RaPtr right) {
  return MakeRa({.kind = RaKind::kDifference,
                 .left = std::move(left),
                 .right = std::move(right)});
}
RaPtr RaPrefix(int column, RaPtr input) {
  return MakeRa(
      {.kind = RaKind::kPrefix, .column = column, .left = std::move(input)});
}
RaPtr RaAddRight(int column, char letter, RaPtr input) {
  return MakeRa({.kind = RaKind::kAddRight,
                 .column = column,
                 .letter = letter,
                 .left = std::move(input)});
}
RaPtr RaAddLeft(int column, char letter, RaPtr input) {
  return MakeRa({.kind = RaKind::kAddLeft,
                 .column = column,
                 .letter = letter,
                 .left = std::move(input)});
}
RaPtr RaTrimLeft(int column, char letter, RaPtr input) {
  return MakeRa({.kind = RaKind::kTrimLeft,
                 .column = column,
                 .letter = letter,
                 .left = std::move(input)});
}
RaPtr RaDown(int column, RaPtr input) {
  return MakeRa(
      {.kind = RaKind::kDown, .column = column, .left = std::move(input)});
}
RaPtr RaInsert(int prefix_column, int subject_column, char letter,
               RaPtr input) {
  return MakeRa({.kind = RaKind::kInsert,
                 .column = prefix_column,
                 .column2 = subject_column,
                 .letter = letter,
                 .left = std::move(input)});
}

std::string ColumnVar(int i) { return "c" + std::to_string(i); }

Result<int> RaArity(const RaPtr& expr,
                    const std::map<std::string, int>& schema) {
  switch (expr->kind) {
    case RaKind::kScan: {
      auto it = schema.find(expr->relation);
      if (it == schema.end()) {
        return InvalidArgumentError("unknown relation " + expr->relation);
      }
      return it->second;
    }
    case RaKind::kEpsilon:
      return 1;
    case RaKind::kSelect: {
      STRQ_ASSIGN_OR_RETURN(int arity, RaArity(expr->left, schema));
      // σ condition variables must be c0..c(arity-1).
      for (const std::string& v : FreeVars(expr->condition)) {
        bool ok = false;
        for (int i = 0; i < arity; ++i) {
          if (v == ColumnVar(i)) {
            ok = true;
            break;
          }
        }
        if (!ok) {
          return InvalidArgumentError("selection mentions unknown column " +
                                      v);
        }
      }
      return arity;
    }
    case RaKind::kProject: {
      STRQ_ASSIGN_OR_RETURN(int arity, RaArity(expr->left, schema));
      for (int c : expr->columns) {
        if (c < 0 || c >= arity) {
          return InvalidArgumentError("projection column out of range");
        }
      }
      return static_cast<int>(expr->columns.size());
    }
    case RaKind::kProduct: {
      STRQ_ASSIGN_OR_RETURN(int l, RaArity(expr->left, schema));
      STRQ_ASSIGN_OR_RETURN(int r, RaArity(expr->right, schema));
      return l + r;
    }
    case RaKind::kUnion:
    case RaKind::kDifference: {
      STRQ_ASSIGN_OR_RETURN(int l, RaArity(expr->left, schema));
      STRQ_ASSIGN_OR_RETURN(int r, RaArity(expr->right, schema));
      if (l != r) {
        return InvalidArgumentError("union/difference arity mismatch");
      }
      return l;
    }
    case RaKind::kPrefix:
    case RaKind::kAddRight:
    case RaKind::kAddLeft:
    case RaKind::kTrimLeft:
    case RaKind::kDown: {
      STRQ_ASSIGN_OR_RETURN(int arity, RaArity(expr->left, schema));
      if (expr->column < 0 || expr->column >= arity) {
        return InvalidArgumentError("column index out of range");
      }
      return arity + 1;
    }
    case RaKind::kInsert: {
      STRQ_ASSIGN_OR_RETURN(int arity, RaArity(expr->left, schema));
      if (expr->column < 0 || expr->column >= arity || expr->column2 < 0 ||
          expr->column2 >= arity) {
        return InvalidArgumentError("column index out of range");
      }
      return arity + 1;
    }
  }
  return InternalError("unknown algebra node");
}

namespace {

Status ValidateNode(const RaPtr& expr, StructureId structure,
                    const Alphabet& alphabet) {
  switch (expr->kind) {
    case RaKind::kSelect:
      if (MentionsDatabase(expr->condition)) {
        return InvalidArgumentError(
            "σ condition must not refer to the database (Section 6.2)");
      }
      return CheckInLanguage(expr->condition, structure, alphabet);
    case RaKind::kAddLeft:
    case RaKind::kTrimLeft:
      if (structure != StructureId::kSLeft &&
          structure != StructureId::kSLen &&
          structure != StructureId::kConcat) {
        return NotInLanguageError(
            "add-left/trim-left belong to RA(S_left) (Section 7.1)");
      }
      return Status::Ok();
    case RaKind::kDown:
      if (structure != StructureId::kSLen && structure != StructureId::kConcat) {
        return NotInLanguageError("↓ belongs to RA(S_len) only (Section 6.2)");
      }
      return Status::Ok();
    case RaKind::kInsert:
      if (structure != StructureId::kSInsert &&
          structure != StructureId::kConcat) {
        return NotInLanguageError(
            "insert belongs to RA(S_ins), the Conclusion's extension");
      }
      return Status::Ok();
    default:
      return Status::Ok();
  }
}

}  // namespace

Status ValidateAlgebra(const RaPtr& expr, StructureId structure,
                       const std::map<std::string, int>& schema,
                       const Alphabet& alphabet) {
  Result<int> arity = RaArity(expr, schema);
  if (!arity.ok()) return arity.status();
  STRQ_RETURN_IF_ERROR(ValidateNode(expr, structure, alphabet));
  if (expr->left) {
    STRQ_RETURN_IF_ERROR(ValidateAlgebra(expr->left, structure, schema,
                                         alphabet));
  }
  if (expr->right) {
    STRQ_RETURN_IF_ERROR(ValidateAlgebra(expr->right, structure, schema,
                                         alphabet));
  }
  return Status::Ok();
}

std::string RaToString(const RaPtr& expr) {
  switch (expr->kind) {
    case RaKind::kScan:
      return expr->relation;
    case RaKind::kEpsilon:
      return "R_eps";
    case RaKind::kSelect:
      return "select[" + ToString(expr->condition) + "](" +
             RaToString(expr->left) + ")";
    case RaKind::kProject: {
      std::string cols;
      for (size_t i = 0; i < expr->columns.size(); ++i) {
        if (i > 0) cols += ",";
        cols += std::to_string(expr->columns[i]);
      }
      return "project[" + cols + "](" + RaToString(expr->left) + ")";
    }
    case RaKind::kProduct:
      return "(" + RaToString(expr->left) + " x " + RaToString(expr->right) +
             ")";
    case RaKind::kUnion:
      return "(" + RaToString(expr->left) + " U " + RaToString(expr->right) +
             ")";
    case RaKind::kDifference:
      return "(" + RaToString(expr->left) + " \\ " + RaToString(expr->right) +
             ")";
    case RaKind::kPrefix:
      return "prefix[" + std::to_string(expr->column) + "](" +
             RaToString(expr->left) + ")";
    case RaKind::kAddRight:
      return "add[" + std::to_string(expr->column) + "," + expr->letter +
             "](" + RaToString(expr->left) + ")";
    case RaKind::kAddLeft:
      return "addleft[" + std::to_string(expr->column) + "," + expr->letter +
             "](" + RaToString(expr->left) + ")";
    case RaKind::kTrimLeft:
      return "trimleft[" + std::to_string(expr->column) + "," + expr->letter +
             "](" + RaToString(expr->left) + ")";
    case RaKind::kDown:
      return "down[" + std::to_string(expr->column) + "](" +
             RaToString(expr->left) + ")";
    case RaKind::kInsert:
      return "insert[" + std::to_string(expr->column) + "," +
             std::to_string(expr->column2) + "," + expr->letter + "](" +
             RaToString(expr->left) + ")";
  }
  return "?";
}

}  // namespace strq
