#ifndef STRQ_RELATIONAL_ALGEBRA_H_
#define STRQ_RELATIONAL_ALGEBRA_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "base/status.h"
#include "logic/ast.h"
#include "logic/signature.h"

namespace strq {

// The extended relational algebras of Sections 6.2 and 7.1. On top of the
// classical σ, π, ×, −, ∪ the paper adds:
//
//   R_ε           constant unary relation {ε}
//   σ_α           selection by a pure M-formula α (α must not refer to the
//                 database); α's free variables c0, c1, ... name columns
//   prefix_i      append a column ranging over the prefixes of column i
//   add_i^a       append column s_i · a                      (all algebras)
//   addleft_i^a   append column a · s_i                      (RA(S_left))
//   trimleft_i^a  append column s_i − a                      (RA(S_left))
//   ↓_i (down)    append a column ranging over ALL strings of length ≤ |s_i|
//                 (RA(S_len) only; exponential — the paper notes this is
//                 unavoidable because RC(S_len) has NP-hard safe queries)
//
// The algebra families:
//   RA(S):      σ_α with α ∈ FO(S), prefix, add-right
//   RA(S_left): σ_α with α ∈ FO(S_left), prefix, add-right, add-left, trim
//   RA(S_reg):  σ_α with α ∈ FO(S_reg), prefix, add-right
//   RA(S_len):  σ_α with α ∈ FO(S_len), prefix, add-right, down
// (Theorems 4 and 8: each captures exactly the safe fragment of its RC.)

enum class RaKind {
  kScan,        // database relation by name
  kEpsilon,     // R_ε = {(ε)}
  kSelect,      // σ_α(E)
  kProject,     // π_{columns}(E) — may reorder/duplicate columns
  kProduct,     // E1 × E2
  kUnion,       // E1 ∪ E2
  kDifference,  // E1 − E2
  kPrefix,      // prefix_i(E)
  kAddRight,    // add_i^a(E)
  kAddLeft,     // addleft_i^a(E)
  kTrimLeft,    // trimleft_i^a(E)
  kDown,        // ↓_i(E)
  kInsert,      // insert_{i,j}^a(E): append insert_a(s_i, s_j) — the
                // Conclusion-extension operator of RA(S_ins)
};

struct RaExpr;
using RaPtr = std::shared_ptr<const RaExpr>;

struct RaExpr {
  RaKind kind;
  std::string relation;      // kScan
  FormulaPtr condition;      // kSelect; free vars c0..c(n-1)
  std::vector<int> columns;  // kProject
  int column = 0;            // column ops: the index i (0-based)
  int column2 = 0;           // kInsert: the subject column j
  char letter = '\0';        // kAddRight/kAddLeft/kTrimLeft/kInsert
  RaPtr left;
  RaPtr right;
};

RaPtr RaScan(std::string relation);
RaPtr RaEpsilon();
RaPtr RaSelect(FormulaPtr condition, RaPtr input);
RaPtr RaProject(std::vector<int> columns, RaPtr input);
RaPtr RaProduct(RaPtr left, RaPtr right);
RaPtr RaUnion(RaPtr left, RaPtr right);
RaPtr RaDifference(RaPtr left, RaPtr right);
RaPtr RaPrefix(int column, RaPtr input);
RaPtr RaAddRight(int column, char letter, RaPtr input);
RaPtr RaAddLeft(int column, char letter, RaPtr input);
RaPtr RaTrimLeft(int column, char letter, RaPtr input);
RaPtr RaDown(int column, RaPtr input);
// insert_{prefix_column, subject_column}^letter.
RaPtr RaInsert(int prefix_column, int subject_column, char letter,
               RaPtr input);

// The column-variable name used by σ_α conditions for column `i`: "c<i>".
std::string ColumnVar(int i);

// Output arity of the expression under the given schema (relation name ->
// arity). Validates column indices and σ conditions' variable usage.
Result<int> RaArity(const RaPtr& expr,
                    const std::map<std::string, int>& schema);

// Checks that the expression only uses operators and σ-formulas of the
// algebra RA(structure), per the table above. `alphabet` is needed to check
// σ conditions' pattern predicates (star-freeness for S/S_left).
Status ValidateAlgebra(const RaPtr& expr, StructureId structure,
                       const std::map<std::string, int>& schema,
                       const Alphabet& alphabet);

// Pretty printer for plans (diagnostics, benches).
std::string RaToString(const RaPtr& expr);

}  // namespace strq

#endif  // STRQ_RELATIONAL_ALGEBRA_H_
