#include "relational/domain_trie.h"

#include <algorithm>
#include <deque>
#include <utility>

namespace strq {

namespace {

// States from which some accepting state is reachable; a guard walk entering
// a non-live state can never match, which is the subtree-pruning condition.
std::vector<bool> LiveStates(const Dfa& d) {
  const int n = d.num_states();
  std::vector<std::vector<int>> preds(n);
  for (int q = 0; q < n; ++q) {
    for (int cls = 0; cls < d.num_classes(); ++cls) {
      preds[d.NextByClass(q, cls)].push_back(q);
    }
  }
  std::vector<bool> live(n, false);
  std::vector<int> stack;
  for (int q = 0; q < n; ++q) {
    if (d.IsAccepting(q)) {
      live[q] = true;
      stack.push_back(q);
    }
  }
  while (!stack.empty()) {
    int q = stack.back();
    stack.pop_back();
    for (int p : preds[q]) {
      if (!live[p]) {
        live[p] = true;
        stack.push_back(p);
      }
    }
  }
  return live;
}

}  // namespace

Result<std::shared_ptr<const DomainTrie>> DomainTrie::Build(
    const Alphabet& alphabet, const std::vector<std::string>& sorted) {
  std::vector<std::vector<Symbol>> encoded;
  encoded.reserve(sorted.size());
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0 && !(sorted[i - 1] < sorted[i])) {
      return InvalidArgumentError(
          "DomainTrie::Build input must be sorted and duplicate-free");
    }
    STRQ_ASSIGN_OR_RETURN(std::vector<Symbol> w, alphabet.Encode(sorted[i]));
    encoded.push_back(std::move(w));
  }

  auto trie = std::shared_ptr<DomainTrie>(new DomainTrie(alphabet));
  trie->terminal_count_ = static_cast<int64_t>(sorted.size());
  trie->nodes_.push_back(Node{});
  trie->nodes_[0].subtree_terminals = trie->terminal_count_;

  // BFS construction keeps each node's children contiguous. A work item is
  // the (already allocated) node plus the encoded-string range it covers at
  // the given depth.
  struct Item {
    int node;
    size_t lo, hi;
    size_t depth;
  };
  std::deque<Item> work;
  if (!encoded.empty()) work.push_back({0, 0, encoded.size(), 0});
  while (!work.empty()) {
    Item item = work.front();
    work.pop_front();
    size_t lo = item.lo;
    if (lo < item.hi && encoded[lo].size() == item.depth) {
      trie->nodes_[item.node].terminal = true;
      ++lo;
    }
    // Group the remaining strings by their symbol at `depth`; groups are
    // contiguous because the input is sorted.
    const int first_child = static_cast<int>(trie->nodes_.size());
    int num_children = 0;
    size_t at = lo;
    while (at < item.hi) {
      const Symbol sym = encoded[at][item.depth];
      size_t end = at;
      while (end < item.hi && encoded[end][item.depth] == sym) ++end;
      Node child;
      child.symbol = sym;
      child.subtree_terminals = static_cast<int64_t>(end - at);
      trie->nodes_.push_back(child);
      work.push_back({first_child + num_children, at, end, item.depth + 1});
      ++num_children;
      at = end;
    }
    trie->nodes_[item.node].first_child = first_child;
    trie->nodes_[item.node].num_children = num_children;
  }
  return std::shared_ptr<const DomainTrie>(std::move(trie));
}

bool DomainTrie::Contains(const std::string& s) const {
  if (nodes_.empty()) return false;
  int node = 0;
  for (char c : s) {
    if (!alphabet_.Contains(c)) return false;
    Result<Symbol> sym = alphabet_.SymbolOf(c);
    if (!sym.ok()) return false;
    const int first = nodes_[node].first_child;
    int next = -1;
    for (int i = 0; i < nodes_[node].num_children; ++i) {
      if (nodes_[first + i].symbol == *sym) {
        next = first + i;
        break;
      }
    }
    if (next < 0) return false;
    node = next;
  }
  return nodes_[node].terminal;
}

std::vector<std::string> DomainTrie::Matching(
    const std::vector<const Dfa*>& guards, MatchStats* stats) const {
  std::vector<std::string> out;
  if (nodes_.empty()) return out;
  std::vector<std::vector<bool>> live;
  live.reserve(guards.size());
  for (const Dfa* g : guards) live.push_back(LiveStates(*g));

  MatchStats local;
  std::string prefix;
  std::vector<int> states;
  states.reserve(guards.size());
  for (const Dfa* g : guards) states.push_back(g->start());

  auto dfs = [&](auto&& self, int node, const std::vector<int>& at) -> void {
    ++local.nodes_visited;
    if (nodes_[node].terminal) {
      bool all = true;
      for (size_t g = 0; g < guards.size(); ++g) {
        if (!guards[g]->IsAccepting(at[g])) {
          all = false;
          break;
        }
      }
      if (all) out.push_back(prefix);
    }
    const int first = nodes_[node].first_child;
    for (int c = 0; c < nodes_[node].num_children; ++c) {
      const Node& child = nodes_[first + c];
      std::vector<int> next(guards.size());
      bool pruned = false;
      for (size_t g = 0; g < guards.size(); ++g) {
        next[g] = guards[g]->Next(at[g], child.symbol);
        if (!live[g][next[g]]) {
          pruned = true;
          break;
        }
      }
      if (pruned) {
        ++local.subtrees_pruned;
        local.strings_pruned += child.subtree_terminals;
        continue;
      }
      prefix.push_back(alphabet_.CharOf(child.symbol));
      self(self, first + c, next);
      prefix.pop_back();
    }
  };
  dfs(dfs, 0, states);
  if (stats != nullptr) *stats = local;
  return out;
}

}  // namespace strq
