#include "relational/snapshot.h"

#include <utility>

namespace strq {

VersionedDatabase::VersionedDatabase(Alphabet alphabet)
    : head_(std::make_shared<const Database>(std::move(alphabet))),
      pins_(std::make_shared<PinTable>()) {}

VersionedDatabase::VersionedDatabase(Database initial)
    : head_(std::make_shared<const Database>(std::move(initial))),
      pins_(std::make_shared<PinTable>()) {}

DbSnapshot VersionedDatabase::Snapshot() const {
  std::shared_ptr<const Database> db;
  {
    std::lock_guard<std::mutex> lock(mu_);
    db = head_;
  }
  int64_t rev = db->revision();
  {
    std::lock_guard<std::mutex> lock(pins_->mu);
    ++pins_->pins[rev];
  }
  // The token's deleter holds the pin table (not `this`), so snapshots may
  // outlive the VersionedDatabase.
  std::shared_ptr<PinTable> pins = pins_;
  std::shared_ptr<void> token(static_cast<void*>(nullptr),
                              [pins, rev](void*) {
                                std::lock_guard<std::mutex> lock(pins->mu);
                                auto it = pins->pins.find(rev);
                                if (it != pins->pins.end() &&
                                    --it->second == 0) {
                                  pins->pins.erase(it);
                                }
                              });
  return DbSnapshot(std::move(db), std::move(token));
}

Status VersionedDatabase::Update(
    const std::function<Status(Database&)>& mutate) {
  std::lock_guard<std::mutex> wlock(write_mu_);
  std::shared_ptr<const Database> cur;
  {
    std::lock_guard<std::mutex> lock(mu_);
    cur = head_;
  }
  auto next = std::make_shared<Database>(*cur);
  STRQ_RETURN_IF_ERROR(mutate(*next));
  int64_t from = cur->revision();
  int64_t to = next->revision();
  {
    std::lock_guard<std::mutex> lock(mu_);
    head_ = std::move(next);
  }
  // Arbitrary mutations are not expressible as tuple ops: log them opaque
  // so delta replays across this commit fall back to full recompilation.
  if (to != from) Publish(CommitDelta{from, to, /*opaque=*/true, {}});
  return Status::Ok();
}

Result<CommitDelta> VersionedDatabase::ApplyDeltas(
    const std::vector<TupleDelta>& ops) {
  std::lock_guard<std::mutex> wlock(write_mu_);
  std::shared_ptr<const Database> cur;
  {
    std::lock_guard<std::mutex> lock(mu_);
    cur = head_;
  }
  auto next = std::make_shared<Database>(*cur);
  CommitDelta delta;
  delta.from_revision = cur->revision();
  // Intermediate revisions minted while mutating the private copy are never
  // observable; only the final published revision ever reaches a snapshot.
  for (const TupleDelta& op : ops) {
    bool changed = false;
    if (op.insert) {
      STRQ_ASSIGN_OR_RETURN(changed, next->InsertTuple(op.relation, op.tuple));
    } else {
      STRQ_ASSIGN_OR_RETURN(changed, next->DeleteTuple(op.relation, op.tuple));
    }
    if (changed) delta.ops.push_back(op);
  }
  if (delta.ops.empty()) {
    delta.to_revision = delta.from_revision;
    return delta;  // nothing changed; nothing published
  }
  delta.to_revision = next->revision();
  {
    std::lock_guard<std::mutex> lock(mu_);
    head_ = std::move(next);
  }
  Publish(delta);
  return delta;
}

std::optional<std::vector<TupleDelta>> VersionedDatabase::DeltasBetween(
    int64_t from_revision, int64_t to_revision) const {
  if (to_revision < from_revision) return std::nullopt;
  std::vector<TupleDelta> out;
  if (to_revision == from_revision) return out;
  std::lock_guard<std::mutex> lock(log_mu_);
  // Walk the contiguous chain of commit records from `from_revision` up.
  // The log is ordered by construction (appended under write_mu_), so a
  // linear scan for the starting edge suffices at kMaxLogCommits size.
  int64_t at = from_revision;
  for (const CommitDelta& c : log_) {
    if (c.from_revision != at) continue;
    if (c.opaque) return std::nullopt;
    out.insert(out.end(), c.ops.begin(), c.ops.end());
    at = c.to_revision;
    if (at == to_revision) return out;
  }
  return std::nullopt;  // chain truncated or revisions unknown
}

void VersionedDatabase::SetCommitHook(
    std::function<void(const CommitDelta&)> hook) {
  std::lock_guard<std::mutex> lock(log_mu_);
  commit_hook_ = std::move(hook);
}

void VersionedDatabase::Publish(CommitDelta delta) {
  std::function<void(const CommitDelta&)> hook;
  {
    std::lock_guard<std::mutex> lock(log_mu_);
    log_.push_back(delta);
    while (log_.size() > kMaxLogCommits) log_.pop_front();
    hook = commit_hook_;
  }
  if (hook) hook(delta);
}

Status VersionedDatabase::AddRelation(const std::string& name,
                                      Relation relation) {
  return Update([&](Database& db) {
    return db.AddRelation(name, std::move(relation));
  });
}

Status VersionedDatabase::AddRelation(const std::string& name, int arity,
                                      std::vector<Tuple> tuples) {
  return Update([&](Database& db) {
    return db.AddRelation(name, arity, std::move(tuples));
  });
}

int64_t VersionedDatabase::head_revision() const {
  std::lock_guard<std::mutex> lock(mu_);
  return head_->revision();
}

bool VersionedDatabase::IsLive(int64_t revision) const {
  if (revision == head_revision()) return true;
  std::lock_guard<std::mutex> lock(pins_->mu);
  return pins_->pins.count(revision) > 0;
}

std::vector<int64_t> VersionedDatabase::LiveRevisions() const {
  std::vector<int64_t> live;
  live.push_back(head_revision());
  std::lock_guard<std::mutex> lock(pins_->mu);
  for (const auto& [rev, count] : pins_->pins) {
    if (rev != live.front()) live.push_back(rev);
  }
  return live;
}

size_t VersionedDatabase::pinned_revisions() const {
  std::lock_guard<std::mutex> lock(pins_->mu);
  return pins_->pins.size();
}

}  // namespace strq
