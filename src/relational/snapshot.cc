#include "relational/snapshot.h"

#include <utility>

namespace strq {

VersionedDatabase::VersionedDatabase(Alphabet alphabet)
    : head_(std::make_shared<const Database>(std::move(alphabet))),
      pins_(std::make_shared<PinTable>()) {}

VersionedDatabase::VersionedDatabase(Database initial)
    : head_(std::make_shared<const Database>(std::move(initial))),
      pins_(std::make_shared<PinTable>()) {}

DbSnapshot VersionedDatabase::Snapshot() const {
  std::shared_ptr<const Database> db;
  {
    std::lock_guard<std::mutex> lock(mu_);
    db = head_;
  }
  int64_t rev = db->revision();
  {
    std::lock_guard<std::mutex> lock(pins_->mu);
    ++pins_->pins[rev];
  }
  // The token's deleter holds the pin table (not `this`), so snapshots may
  // outlive the VersionedDatabase.
  std::shared_ptr<PinTable> pins = pins_;
  std::shared_ptr<void> token(static_cast<void*>(nullptr),
                              [pins, rev](void*) {
                                std::lock_guard<std::mutex> lock(pins->mu);
                                auto it = pins->pins.find(rev);
                                if (it != pins->pins.end() &&
                                    --it->second == 0) {
                                  pins->pins.erase(it);
                                }
                              });
  return DbSnapshot(std::move(db), std::move(token));
}

Status VersionedDatabase::Update(
    const std::function<Status(Database&)>& mutate) {
  std::lock_guard<std::mutex> wlock(write_mu_);
  std::shared_ptr<const Database> cur;
  {
    std::lock_guard<std::mutex> lock(mu_);
    cur = head_;
  }
  auto next = std::make_shared<Database>(*cur);
  STRQ_RETURN_IF_ERROR(mutate(*next));
  {
    std::lock_guard<std::mutex> lock(mu_);
    head_ = std::move(next);
  }
  return Status::Ok();
}

Status VersionedDatabase::AddRelation(const std::string& name,
                                      Relation relation) {
  return Update([&](Database& db) {
    return db.AddRelation(name, std::move(relation));
  });
}

Status VersionedDatabase::AddRelation(const std::string& name, int arity,
                                      std::vector<Tuple> tuples) {
  return Update([&](Database& db) {
    return db.AddRelation(name, arity, std::move(tuples));
  });
}

int64_t VersionedDatabase::head_revision() const {
  std::lock_guard<std::mutex> lock(mu_);
  return head_->revision();
}

bool VersionedDatabase::IsLive(int64_t revision) const {
  if (revision == head_revision()) return true;
  std::lock_guard<std::mutex> lock(pins_->mu);
  return pins_->pins.count(revision) > 0;
}

std::vector<int64_t> VersionedDatabase::LiveRevisions() const {
  std::vector<int64_t> live;
  live.push_back(head_revision());
  std::lock_guard<std::mutex> lock(pins_->mu);
  for (const auto& [rev, count] : pins_->pins) {
    if (rev != live.front()) live.push_back(rev);
  }
  return live;
}

size_t VersionedDatabase::pinned_revisions() const {
  std::lock_guard<std::mutex> lock(pins_->mu);
  return pins_->pins.size();
}

}  // namespace strq
