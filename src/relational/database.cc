#include "relational/database.h"

#include <algorithm>
#include <atomic>
#include <set>

namespace strq {

namespace {

// Revisions are process-unique (never reused across Database instances) so
// caches keyed on them can never serve stale contents.
int64_t NextRevision() {
  static std::atomic<int64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace

Result<Relation> Relation::Create(int arity, std::vector<Tuple> tuples) {
  if (arity < 0) return InvalidArgumentError("negative arity");
  for (const Tuple& t : tuples) {
    if (static_cast<int>(t.size()) != arity) {
      return InvalidArgumentError("tuple arity mismatch");
    }
  }
  std::sort(tuples.begin(), tuples.end());
  tuples.erase(std::unique(tuples.begin(), tuples.end()), tuples.end());
  return Relation(arity, std::move(tuples));
}

Relation Relation::Empty(int arity) { return Relation(arity, {}); }

bool Relation::Contains(const Tuple& t) const {
  return std::binary_search(tuples_.begin(), tuples_.end(), t);
}

std::vector<std::string> Relation::ActiveDomain() const {
  std::set<std::string> domain;
  for (const Tuple& t : tuples_) domain.insert(t.begin(), t.end());
  return std::vector<std::string>(domain.begin(), domain.end());
}

Result<bool> Relation::Insert(const Tuple& t) {
  if (static_cast<int>(t.size()) != arity_) {
    return InvalidArgumentError("tuple arity mismatch");
  }
  auto it = std::lower_bound(tuples_.begin(), tuples_.end(), t);
  if (it != tuples_.end() && *it == t) return false;
  tuples_.insert(it, t);
  return true;
}

Result<bool> Relation::Remove(const Tuple& t) {
  if (static_cast<int>(t.size()) != arity_) {
    return InvalidArgumentError("tuple arity mismatch");
  }
  auto it = std::lower_bound(tuples_.begin(), tuples_.end(), t);
  if (it == tuples_.end() || *it != t) return false;
  tuples_.erase(it);
  return true;
}

Status Database::AddRelation(const std::string& name, Relation relation) {
  for (const Tuple& t : relation.tuples()) {
    for (const std::string& s : t) {
      for (char c : s) {
        if (!alphabet_.Contains(c)) {
          return InvalidArgumentError(
              std::string("relation ") + name + " contains character '" + c +
              "' outside the database alphabet");
        }
      }
    }
  }
  relations_.insert_or_assign(name, std::move(relation));
  revision_ = NextRevision();
  return Status::Ok();
}

Status Database::AddRelation(const std::string& name, int arity,
                             std::vector<Tuple> tuples) {
  STRQ_ASSIGN_OR_RETURN(Relation r, Relation::Create(arity, std::move(tuples)));
  return AddRelation(name, std::move(r));
}

Result<bool> Database::InsertTuple(const std::string& name, const Tuple& t) {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return InvalidArgumentError("unknown relation " + name);
  }
  for (const std::string& s : t) {
    for (char c : s) {
      if (!alphabet_.Contains(c)) {
        return InvalidArgumentError(
            std::string("tuple for ") + name + " contains character '" + c +
            "' outside the database alphabet");
      }
    }
  }
  STRQ_ASSIGN_OR_RETURN(bool changed, it->second.Insert(t));
  if (changed) revision_ = NextRevision();
  return changed;
}

Result<bool> Database::DeleteTuple(const std::string& name, const Tuple& t) {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return InvalidArgumentError("unknown relation " + name);
  }
  STRQ_ASSIGN_OR_RETURN(bool changed, it->second.Remove(t));
  if (changed) revision_ = NextRevision();
  return changed;
}

const Relation* Database::Find(const std::string& name) const {
  auto it = relations_.find(name);
  return it == relations_.end() ? nullptr : &it->second;
}

std::vector<std::string> Database::ActiveDomain() const {
  std::set<std::string> domain;
  for (const auto& [name, rel] : relations_) {
    for (const Tuple& t : rel.tuples()) domain.insert(t.begin(), t.end());
  }
  return std::vector<std::string>(domain.begin(), domain.end());
}

size_t Database::MaxAdomLength() const {
  size_t best = 0;
  for (const std::string& s : ActiveDomain()) best = std::max(best, s.size());
  return best;
}

}  // namespace strq
