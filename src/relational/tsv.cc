#include "relational/tsv.h"

#include <fstream>
#include <sstream>
#include <vector>

namespace strq {

Result<Relation> ReadTsvRelation(std::istream& in, const Alphabet& alphabet) {
  std::vector<Tuple> tuples;
  int arity = -1;
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    Tuple t;
    size_t start = 0;
    while (true) {
      size_t tab = line.find('\t', start);
      t.push_back(line.substr(
          start, tab == std::string::npos ? std::string::npos : tab - start));
      if (tab == std::string::npos) break;
      start = tab + 1;
    }
    for (const std::string& field : t) {
      for (char c : field) {
        if (!alphabet.Contains(c)) {
          return InvalidArgumentError(
              "line " + std::to_string(line_number) + ": character '" +
              std::string(1, c) + "' outside the alphabet");
        }
      }
    }
    if (arity < 0) {
      arity = static_cast<int>(t.size());
    } else if (static_cast<int>(t.size()) != arity) {
      return InvalidArgumentError("line " + std::to_string(line_number) +
                                  ": expected " + std::to_string(arity) +
                                  " fields, found " +
                                  std::to_string(t.size()));
    }
    tuples.push_back(std::move(t));
  }
  if (arity < 0) {
    return InvalidArgumentError(
        "no data rows; cannot infer the relation arity");
  }
  return Relation::Create(arity, std::move(tuples));
}

Status LoadTsvRelation(Database& db, const std::string& name,
                       const std::string& path) {
  std::ifstream in(path);
  if (!in) return InvalidArgumentError("cannot open " + path);
  STRQ_ASSIGN_OR_RETURN(Relation rel, ReadTsvRelation(in, db.alphabet()));
  return db.AddRelation(name, std::move(rel));
}

void WriteTsvRelation(const Relation& relation, std::ostream& out) {
  for (const Tuple& t : relation.tuples()) {
    for (size_t i = 0; i < t.size(); ++i) {
      if (i > 0) out << '\t';
      out << t[i];
    }
    out << '\n';
  }
}

Status SaveTsvRelation(const Database& db, const std::string& name,
                       const std::string& path) {
  const Relation* rel = db.Find(name);
  if (rel == nullptr) return InvalidArgumentError("unknown relation " + name);
  std::ofstream out(path);
  if (!out) return InvalidArgumentError("cannot write " + path);
  WriteTsvRelation(*rel, out);
  return Status::Ok();
}

}  // namespace strq
