#include "relational/width.h"

#include <vector>

#include "base/string_ops.h"

namespace strq {

int AdomWidth(const Database& db) {
  std::vector<std::string> adom = db.ActiveDomain();
  // Longest chain under ≼ via DP over the sorted order (a prefix of s sorts
  // before s, so sorted order is a linear extension of ≼).
  int best = 0;
  std::vector<int> chain(adom.size(), 1);
  for (size_t i = 0; i < adom.size(); ++i) {
    for (size_t j = 0; j < i; ++j) {
      if (IsPrefix(adom[j], adom[i])) {
        chain[i] = std::max(chain[i], chain[j] + 1);
      }
    }
    best = std::max(best, chain[i]);
  }
  return best;
}

Result<WidthOneResult> MakeWidthOne(const Database& db) {
  if (!db.alphabet().Contains('0')) {
    return InvalidArgumentError(
        "width-1 transformation needs '0' in the alphabet");
  }
  std::vector<std::string> adom = db.ActiveDomain();
  WidthOneResult out{Database(db.alphabet()), {}};
  for (size_t i = 0; i < adom.size(); ++i) {
    out.mapping[adom[i]] = std::string(i + 1, '0');
  }
  for (const auto& [name, rel] : db.relations()) {
    std::vector<Tuple> tuples;
    for (const Tuple& t : rel.tuples()) {
      Tuple mapped;
      mapped.reserve(t.size());
      for (const std::string& s : t) mapped.push_back(out.mapping.at(s));
      tuples.push_back(std::move(mapped));
    }
    STRQ_RETURN_IF_ERROR(
        out.database.AddRelation(name, rel.arity(), std::move(tuples)));
  }
  return out;
}

}  // namespace strq
