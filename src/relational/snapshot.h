#ifndef STRQ_RELATIONAL_SNAPSHOT_H_
#define STRQ_RELATIONAL_SNAPSHOT_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "relational/database.h"

namespace strq {

// One tuple-level write: insert (or delete) `tuple` into relation
// `relation`. The unit of the incremental-maintenance delta log.
struct TupleDelta {
  std::string relation;
  Tuple tuple;
  bool insert = true;
};

// The published record of one commit: the revision edge it created and the
// tuple ops that explain it. `opaque` marks commits whose effect cannot be
// expressed as tuple deltas (whole-relation AddRelation, arbitrary Update
// mutations) — a delta chain crossing an opaque commit cannot be replayed,
// so consumers fall back to full recompilation.
struct CommitDelta {
  int64_t from_revision = 0;
  int64_t to_revision = 0;
  bool opaque = false;
  std::vector<TupleDelta> ops;  // effective ops only; empty when opaque
};

// An immutable, pinned view of a database at one revision.
//
// A DbSnapshot is the unit of isolation for the serving layer: every query a
// session runs is evaluated against the snapshot's Database object, which is
// never mutated after publication, so a reader holding a snapshot sees a
// point-in-time state no matter how many writers commit meanwhile — repeated
// queries inside one session are answered against the same world.
//
// The snapshot is also a PIN: for as long as any copy of it is alive, its
// revision is reported live by the owning VersionedDatabase, which the
// serving layer uses to retain AutomatonStore/AtomCache entries keyed on
// that revision ("rel:<name>:<rev>", "adom:<rev>", …) and to reclaim them
// only once the last pin dies. Copying a snapshot is two shared_ptr bumps;
// snapshots may outlive the VersionedDatabase that issued them.
class DbSnapshot {
 public:
  DbSnapshot() = default;

  const Database& db() const { return *db_; }
  const std::shared_ptr<const Database>& shared() const { return db_; }
  int64_t revision() const { return db_ ? db_->revision() : -1; }
  explicit operator bool() const { return db_ != nullptr; }

 private:
  friend class VersionedDatabase;
  DbSnapshot(std::shared_ptr<const Database> db, std::shared_ptr<void> pin)
      : db_(std::move(db)), pin_(std::move(pin)) {}

  std::shared_ptr<const Database> db_;
  // Ref-counted pin token; releases the revision in the issuer's pin table
  // when the last copy is destroyed.
  std::shared_ptr<void> pin_;
};

// A multi-version database: one mutable head published as a chain of
// immutable Database values.
//
//  * Readers call Snapshot() and get the current head pinned at its
//    revision. Taking a snapshot is wait-free with respect to writers in
//    the only sense that matters here: it acquires no lock a writer holds
//    while copying or mutating data — just the brief pointer-swap mutex —
//    so readers never wait for a commit in progress, and an in-progress
//    read never delays a commit.
//  * Writers serialize among themselves (copy the head, mutate the copy,
//    publish it with a pointer swap). Database::AddRelation stamps every
//    commit with a fresh process-unique revision, so revision-keyed cache
//    entries can never alias across commits.
//
// Old versions stay alive exactly as long as someone holds them: the
// Database payload via shared_ptr, the revision's liveness via the pin
// table. IsLive()/LiveRevisions() expose the pin table so cache reclamation
// (AtomCache::EvictRevisionEntries) can drop entries for dead revisions
// without ever touching one a live session might still read.
class VersionedDatabase {
 public:
  explicit VersionedDatabase(Alphabet alphabet);
  explicit VersionedDatabase(Database initial);
  VersionedDatabase(const VersionedDatabase&) = delete;
  VersionedDatabase& operator=(const VersionedDatabase&) = delete;

  const Alphabet& alphabet() const { return head_->alphabet(); }

  // The current head, pinned. Never blocks on a writer's copy/mutate work.
  DbSnapshot Snapshot() const;

  // Copy-modify-publish commits. AddRelation is the common case; Update runs
  // an arbitrary mutation against a private copy of the head and publishes
  // it iff the mutation succeeds (on error nothing is published).
  Status AddRelation(const std::string& name, Relation relation);
  Status AddRelation(const std::string& name, int arity,
                     std::vector<Tuple> tuples);
  Status Update(const std::function<Status(Database&)>& mutate);

  // Applies a batch of tuple-level writes as ONE copy-modify-publish commit
  // (one head copy, one revision edge) and records the effective ops in the
  // delta log. No-op writes (inserting a present tuple, deleting an absent
  // one) are dropped from the record; if nothing changed, nothing is
  // published and the returned CommitDelta has from_revision ==
  // to_revision and no ops. On error nothing is published.
  Result<CommitDelta> ApplyDeltas(const std::vector<TupleDelta>& ops);

  // The concatenated effective tuple ops along the revision chain
  // (from_revision, to_revision], or nullopt if the chain is not fully
  // replayable: unknown revisions, a segment truncated out of the bounded
  // log, an opaque commit in between, or to < from. DeltasBetween(r, r)
  // returns an empty vector.
  std::optional<std::vector<TupleDelta>> DeltasBetween(int64_t from_revision,
                                                       int64_t to_revision)
      const;

  // Registers a hook invoked after every publishing commit (including
  // opaque ones), while the writer lock is still held so hooks observe
  // commits in revision order. The hook must not commit back into this
  // VersionedDatabase (self-deadlock) and should be fast; pass nullptr to
  // clear.
  void SetCommitHook(std::function<void(const CommitDelta&)> hook);

  // Revision of the current head.
  int64_t head_revision() const;

  // Is `revision` the head or pinned by a live snapshot? (Dead revisions'
  // cache entries are reclaimable.)
  bool IsLive(int64_t revision) const;
  std::vector<int64_t> LiveRevisions() const;

  // Number of distinct revisions currently pinned by outstanding snapshots.
  size_t pinned_revisions() const;

 private:
  struct PinTable {
    std::mutex mu;
    std::map<int64_t, int> pins;
  };

  // Called with write_mu_ held, after the head swap: records the commit in
  // the bounded delta log and fires the commit hook.
  void Publish(CommitDelta delta);

  mutable std::mutex mu_;        // guards the head_ pointer swap
  std::mutex write_mu_;          // serializes writers
  std::shared_ptr<const Database> head_;
  // Shared with every pin token so tokens outliving this object stay safe.
  std::shared_ptr<PinTable> pins_;

  // Bounded history of commit records, oldest first; guarded by log_mu_
  // (not mu_: DeltasBetween readers must not contend with the head swap).
  static constexpr size_t kMaxLogCommits = 128;
  mutable std::mutex log_mu_;
  std::deque<CommitDelta> log_;
  std::function<void(const CommitDelta&)> commit_hook_;
};

}  // namespace strq

#endif  // STRQ_RELATIONAL_SNAPSHOT_H_
