#include "shard/sharded_db.h"

#include <algorithm>
#include <utility>

#include "obs/trace.h"

namespace strq {
namespace shard {

namespace {

// Splits `head` into `n` databases: tuple t of every relation goes to
// partition OwnerShard(t). Every shard gets every relation (possibly empty)
// so schemas agree and per-shard compiles never see an unknown name.
Result<std::vector<Database>> PartitionHead(const Database& head,
                                            int partition_track, int n) {
  std::vector<Database> parts;
  parts.reserve(n);
  for (int i = 0; i < n; ++i) parts.emplace_back(head.alphabet());
  for (const auto& [name, rel] : head.relations()) {
    std::vector<std::vector<Tuple>> buckets(n);
    for (const Tuple& t : rel.tuples()) {
      buckets[ShardedDatabase::OwnerShard(t, partition_track, n)].push_back(t);
    }
    for (int i = 0; i < n; ++i) {
      STRQ_RETURN_IF_ERROR(
          parts[i].AddRelation(name, rel.arity(), std::move(buckets[i])));
    }
  }
  return parts;
}

}  // namespace

int ShardedDatabase::OwnerShard(const Tuple& tuple, int partition_track,
                                int num_shards) {
  if (num_shards <= 1) return 0;
  uint64_t h = 1469598103934665603ULL;  // FNV-1a offset basis
  if (!tuple.empty()) {
    size_t track = partition_track < 0 ? 0 : static_cast<size_t>(partition_track);
    track = std::min(track, tuple.size() - 1);
    for (unsigned char c : tuple[track]) {
      h ^= c;
      h *= 1099511628211ULL;  // FNV-1a prime
    }
  }
  return static_cast<int>(h % static_cast<uint64_t>(num_shards));
}

ShardedDatabase::ShardedDatabase(const VersionedDatabase* merge,
                                 ShardOptions options)
    : merge_(merge), options_(options) {
  int n = std::max(1, options_.num_shards);
  DbSnapshot head = merge_->Snapshot();
  Result<std::vector<Database>> parts =
      PartitionHead(head.db(), options_.partition_track, n);
  // Partitioning the head cannot fail: it only re-adds tuples the merge
  // database already accepted against the same alphabet and arities.
  std::vector<Database> initial = std::move(parts).value();
  stacks_.reserve(n);
  for (int i = 0; i < n; ++i) {
    Stack s;
    s.store = std::make_unique<AutomatonStore>();
    s.db = std::make_unique<VersionedDatabase>(std::move(initial[i]));
    s.cache = std::make_shared<AtomCache>(head.db().alphabet(), s.store.get());
    s.planner = std::make_shared<plan::Planner>(options_.planner);
    if (options_.enable_incremental) {
      s.incr = std::make_shared<incr::IncrementalIndex>(
          s.db.get(), s.cache, s.planner, options_.incremental);
    }
    stacks_.push_back(std::move(s));
  }
  // Hooks are installed after the vector is final so the captured pointers
  // stay stable. Each shard's commit stream feeds its own index and reclaims
  // its own dead-snapshot cache entries, mirroring QueryServer's hook.
  for (int i = 0; i < n; ++i) {
    incr::IncrementalIndex* incr = stacks_[i].incr.get();
    AtomCache* cache = stacks_[i].cache.get();
    VersionedDatabase* db = stacks_[i].db.get();
    db->SetCommitHook([incr, cache, db](const CommitDelta& delta) {
      if (incr != nullptr) incr->OnCommit(delta);
      cache->EvictRevisionEntries(
          [db](int64_t rev) { return db->IsLive(rev); });
    });
  }
  shard_commits_.assign(n, 0);
  shard_reseeds_.assign(n, 0);
  synced_merge_ = std::move(head);
}

ShardedDatabase::~ShardedDatabase() {
  for (Stack& s : stacks_) s.db->SetCommitHook(nullptr);
}

ShardedDatabase::SnapshotVector ShardedDatabase::Snapshots() const {
  std::lock_guard<std::mutex> lock(sync_mu_);
  SnapshotVector out;
  out.merge = synced_merge_;
  out.shards.reserve(stacks_.size());
  for (const Stack& s : stacks_) out.shards.push_back(s.db->Snapshot());
  return out;
}

Status ShardedDatabase::ReseedLocked(const Database& head) {
  STRQ_ASSIGN_OR_RETURN(
      std::vector<Database> parts,
      PartitionHead(head, options_.partition_track, num_shards()));
  for (int i = 0; i < num_shards(); ++i) {
    STRQ_RETURN_IF_ERROR(stacks_[i].db->Update([&](Database& d) -> Status {
      d = std::move(parts[i]);
      return Status::Ok();
    }));
    ++shard_reseeds_[i];
  }
  obs::Count(obs::kShardReseeds);
  return Status::Ok();
}

void ShardedDatabase::OnMergeCommit(const CommitDelta& delta) {
  std::lock_guard<std::mutex> lock(sync_mu_);
  bool reseed = delta.opaque;
  if (!reseed && !delta.ops.empty()) {
    std::vector<std::vector<TupleDelta>> buckets(stacks_.size());
    for (const TupleDelta& op : delta.ops) buckets[Owner(op.tuple)].push_back(op);
    for (size_t i = 0; i < stacks_.size(); ++i) {
      if (buckets[i].empty()) continue;  // untouched shards stay warm
      Result<CommitDelta> applied = stacks_[i].db->ApplyDeltas(buckets[i]);
      if (!applied.ok()) {
        // A shard refused a delta the merge database accepted — the
        // partition has diverged somehow; rebuild it from the head.
        reseed = true;
        break;
      }
      ++shard_commits_[i];
      obs::Count(obs::kShardCommitsFanned);
    }
  }
  if (reseed) {
    // Opaque commit (AddRelation / arbitrary Update): the delta cannot be
    // replayed, so re-partition the new head wholesale. Failure is
    // impossible in practice (see PartitionHead); if it ever happens the
    // stale synced_merge_ below keeps readers on the last coherent view.
    if (!ReseedLocked(merge_->Snapshot().db()).ok()) return;
  }
  synced_merge_ = merge_->Snapshot();
}

std::vector<ShardedDatabase::ShardStats> ShardedDatabase::stats() const {
  std::lock_guard<std::mutex> lock(sync_mu_);
  std::vector<ShardStats> out;
  out.reserve(stacks_.size());
  for (size_t i = 0; i < stacks_.size(); ++i) {
    const Stack& s = stacks_[i];
    ShardStats st;
    DbSnapshot snap = s.db->Snapshot();
    st.revision = snap.revision();
    for (const auto& [name, rel] : snap.db().relations()) {
      st.tuples += static_cast<int64_t>(rel.tuples().size());
    }
    st.store_bytes = s.store->stats().bytes;
    st.live_pins = static_cast<int64_t>(s.db->pinned_revisions());
    st.commits = shard_commits_[i];
    st.reseeds = shard_reseeds_[i];
    out.push_back(st);
  }
  return out;
}

}  // namespace shard
}  // namespace strq
