#ifndef STRQ_SHARD_SHARDED_DB_H_
#define STRQ_SHARD_SHARDED_DB_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "automata/store.h"
#include "base/status.h"
#include "incr/incr.h"
#include "mta/atom_cache.h"
#include "plan/planner.h"
#include "relational/snapshot.h"

namespace strq {
namespace shard {

// Partitioning and per-shard stack configuration.
struct ShardOptions {
  // Number of in-process shards; values <= 1 mean "don't shard" (the owner
  // should not construct a ShardedDatabase at all — see QueryServer).
  int num_shards = 1;
  // Track (column index) whose string value is hashed to pick the owning
  // shard. Relations narrower than the track fall back to their last track,
  // so one knob works across mixed arities.
  int partition_track = 0;
  // Per-shard incremental maintenance, mirroring ServerOptions: each shard
  // runs its own IncrementalIndex over its own commit stream, so a tuple
  // commit patches exactly one shard's tries and answers.
  bool enable_incremental = true;
  incr::Options incremental;
  plan::PlannerOptions planner;
};

// A hash partition of one VersionedDatabase (the "merge" database, which
// keeps the full contents) across N in-process shards.
//
// Each shard owns a complete compile stack — its own AutomatonStore,
// VersionedDatabase, AtomCache, Planner, and (optionally) IncrementalIndex —
// so per-shard compilation never contends on another shard's tables and a
// shard's canonical ids are meaningless outside it; only the merge store's
// ids are ever compared or surfaced. Placement is deterministic: a tuple
// lives on shard FNV1a(tuple[partition_track]) % N, independent of insertion
// order, process, or shard count history.
//
// Synchronization with the merge database is hook-driven: the owner calls
// OnMergeCommit from the merge database's commit hook (i.e. under the merge
// writer lock, in revision order). Tuple-level commits fan each op to its
// owning shard's ApplyDeltas — shards the commit does not touch keep their
// revision, so their caches and maintained answers stay warm. Opaque commits
// (AddRelation / arbitrary Update) re-partition the new head wholesale.
//
// Readers never see a torn view: Snapshots() returns the merge snapshot
// stored by the LAST completed sync together with shard snapshots taken
// under the same mutex that serializes syncs, so the vector is coherent by
// construction (shard heads cannot move between the two reads).
class ShardedDatabase {
 public:
  // `merge` must outlive this object and must not yet have a commit hook
  // consumer that bypasses OnMergeCommit. Partitions the current head.
  ShardedDatabase(const VersionedDatabase* merge, ShardOptions options);
  ~ShardedDatabase();
  ShardedDatabase(const ShardedDatabase&) = delete;
  ShardedDatabase& operator=(const ShardedDatabase&) = delete;

  int num_shards() const { return static_cast<int>(stacks_.size()); }
  const ShardOptions& options() const { return options_; }

  // Deterministic owner of `tuple`: FNV-1a over the partition track's bytes,
  // mod num_shards. Exposed for tests and skew diagnostics.
  static int OwnerShard(const Tuple& tuple, int partition_track,
                        int num_shards);
  int Owner(const Tuple& tuple) const {
    return OwnerShard(tuple, options_.partition_track, num_shards());
  }

  // One shard's compile stack. The store is per-shard (declared first so it
  // outlives everything compiled against it).
  struct Stack {
    std::unique_ptr<AutomatonStore> store;
    std::unique_ptr<VersionedDatabase> db;
    std::shared_ptr<AtomCache> cache;
    std::shared_ptr<plan::Planner> planner;
    std::shared_ptr<incr::IncrementalIndex> incr;
  };
  const Stack& stack(int i) const { return stacks_[i]; }

  // A coherent cross-shard view: the merge snapshot of the last completed
  // sync plus one snapshot per shard at exactly that sync point.
  struct SnapshotVector {
    DbSnapshot merge;
    std::vector<DbSnapshot> shards;
  };
  SnapshotVector Snapshots() const;

  // Feeds one merge commit to the partition. MUST be called from the merge
  // database's commit hook (writer lock held): tuple commits fan to owning
  // shards, opaque commits re-partition the head. Never commits back into
  // the merge database.
  void OnMergeCommit(const CommitDelta& delta);

  // Per-shard skew and residency diagnostics (the shell's `stats` rows).
  struct ShardStats {
    int64_t revision = 0;
    int64_t tuples = 0;       // total cardinality across relations
    int64_t store_bytes = 0;  // the shard store's table bytes
    int64_t live_pins = 0;    // revisions pinned by live shard snapshots
    int64_t commits = 0;      // tuple commits fanned to this shard
    int64_t reseeds = 0;      // opaque re-partitions applied
  };
  std::vector<ShardStats> stats() const;

 private:
  // Partitions `head` and replaces every shard's contents (opaque per-shard
  // commit). Called with sync_mu_ held.
  Status ReseedLocked(const Database& head);

  const VersionedDatabase* merge_;
  ShardOptions options_;
  std::vector<Stack> stacks_;

  // Serializes syncs against Snapshots() readers; shard heads only move
  // with this mutex held.
  mutable std::mutex sync_mu_;
  DbSnapshot synced_merge_;
  std::vector<int64_t> shard_commits_;
  std::vector<int64_t> shard_reseeds_;
};

}  // namespace shard
}  // namespace strq

#endif  // STRQ_SHARD_SHARDED_DB_H_
