#include "shard/coordinator.h"

#include <chrono>
#include <optional>
#include <utility>

#include "obs/trace.h"

namespace strq {
namespace shard {

namespace {

int64_t NsSince(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - since)
      .count();
}

// One subtree's verdict: `ok` — every relation occurrence below sits on a
// ∪-distributive path and nothing below reads the active domain; `mentions`
// — the subtree reads at least one database relation (i.e. it is NOT
// shard-constant). The polarity walk mirrors incr's AnalyzeFormula, with the
// extra And rule sharding needs: incr patches ONE relation's delta, sharding
// re-partitions every relation at once, so a conjunction of two
// relation-reading sides does not distribute (⋃ᵢ(Aᵢ∧Bᵢ) misses cross-shard
// pairs).
struct Dist {
  bool ok = true;
  bool mentions = false;
};

Dist Walk(const FormulaPtr& f, bool positive) {
  switch (f->kind) {
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
      return {};
    case FormulaKind::kPred:
      // kAdom reads the database's active domain, which is not the union of
      // the shards' pinned-snapshot adoms seen through per-shard compiles of
      // OTHER subformulas — treat any occurrence as non-distributable.
      return {f->pred != PredKind::kAdom, false};
    case FormulaKind::kRelation:
      return {positive, true};
    case FormulaKind::kNot: {
      Dist a = Walk(f->left, false);
      return {a.ok, a.mentions};
    }
    case FormulaKind::kAnd: {
      Dist a = Walk(f->left, positive);
      Dist b = Walk(f->right, positive);
      return {a.ok && b.ok && !(a.mentions && b.mentions),
              a.mentions || b.mentions};
    }
    case FormulaKind::kOr: {
      Dist a = Walk(f->left, positive);
      Dist b = Walk(f->right, positive);
      return {a.ok && b.ok, a.mentions || b.mentions};
    }
    case FormulaKind::kImplies: {
      Dist a = Walk(f->left, false);
      Dist b = Walk(f->right, positive);
      return {a.ok && b.ok, a.mentions || b.mentions};
    }
    case FormulaKind::kIff: {
      Dist a = Walk(f->left, false);
      Dist b = Walk(f->right, false);
      return {a.ok && b.ok, a.mentions || b.mentions};
    }
    case FormulaKind::kExists: {
      bool all = f->range == QuantRange::kAll;
      Dist a = Walk(f->left, positive && all);
      return {a.ok && all, a.mentions};
    }
    case FormulaKind::kForall: {
      bool all = f->range == QuantRange::kAll;
      Dist a = Walk(f->left, false);
      return {a.ok && all, a.mentions};
    }
  }
  return {false, false};
}

}  // namespace

Coordinator::Coordinator(std::shared_ptr<AtomCache> merge_cache,
                         std::shared_ptr<plan::Planner> merge_planner)
    : merge_cache_(std::move(merge_cache)),
      merge_planner_(std::move(merge_planner)) {}

bool Coordinator::Distributable(const FormulaPtr& f) {
  if (f == nullptr) return false;
  Dist d = Walk(f, /*positive=*/true);
  return d.ok && d.mentions;
}

Result<TrackAutomaton> Coordinator::Adopt(const TrackAutomaton& a) const {
  const AutomatonStore& merge_store = merge_cache_->store();
  if (&a.store() == &merge_store) return a;
  return TrackAutomaton::Create(merge_store, a.alphabet(), a.vars(), a.dfa());
}

Result<TrackAutomaton> Coordinator::CompileMerged(
    const FormulaPtr& f, const std::vector<AutomataEvaluator*>& shard_evals,
    const Database* merge_db, ParallelOptions parallel) const {
  obs::Count(obs::kShardQueries);
  int n = static_cast<int>(shard_evals.size());
  std::vector<Result<TrackAutomaton>> per(n, InternalError("unset"));
  if (n > 1 && !parallel.serial()) {
    ThreadPool::ParallelFor(parallel.num_threads, n, [&](int i) {
      per[i] = shard_evals[i]->Compile(f);
    });
  } else {
    for (int i = 0; i < n; ++i) per[i] = shard_evals[i]->Compile(f);
  }
  auto merge_start = std::chrono::steady_clock::now();
  obs::Span span("shard.merge");
  span.Attr("shards", n);
  std::optional<TrackAutomaton> acc;
  for (int i = 0; i < n; ++i) {
    STRQ_ASSIGN_OR_RETURN(TrackAutomaton a, std::move(per[i]));
    STRQ_ASSIGN_OR_RETURN(TrackAutomaton adopted, Adopt(a));
    if (!acc.has_value()) {
      acc = std::move(adopted);
    } else {
      STRQ_ASSIGN_OR_RETURN(acc, TrackAutomaton::Union(*acc, adopted));
      obs::Count(obs::kShardMergeUnions);
    }
  }
  span.Attr("answer_states", acc->NumStates());
  obs::Observe(obs::kHistShardMergeNs, NsSince(merge_start));
  merge_planner_->RecordActual(f, merge_db, acc->NumStates());
  return *std::move(acc);
}

Result<bool> Coordinator::MergedTruth(
    const FormulaPtr& f, const std::vector<AutomataEvaluator*>& shard_evals,
    ParallelOptions parallel) const {
  obs::Count(obs::kShardQueries);
  int n = static_cast<int>(shard_evals.size());
  if (n <= 1 || parallel.serial()) {
    for (int i = 0; i < n; ++i) {
      STRQ_ASSIGN_OR_RETURN(TrackAutomaton a, shard_evals[i]->Compile(f));
      STRQ_ASSIGN_OR_RETURN(bool truth, a.TruthValue());
      if (truth) {
        // ⋃ of 0-ary languages is OR: the remaining shards cannot flip a
        // true verdict, so they are never compiled.
        if (i + 1 < n) obs::Count(obs::kShardEarlyExits, n - 1 - i);
        return true;
      }
    }
    return false;
  }
  // Parallel: all shards compile concurrently; verdicts combine in shard
  // order with the first error winning, as UnionOfCQsSafe does — identical
  // to the serial scan on every input where no shard errs.
  std::vector<Result<bool>> per(n, InternalError("unset"));
  ThreadPool::ParallelFor(parallel.num_threads, n, [&](int i) {
    Result<TrackAutomaton> a = shard_evals[i]->Compile(f);
    per[i] = a.ok() ? a->TruthValue() : Result<bool>(a.status());
  });
  for (int i = 0; i < n; ++i) {
    STRQ_ASSIGN_OR_RETURN(bool truth, std::move(per[i]));
    if (truth) return true;
  }
  return false;
}

Result<bool> Coordinator::MergedIsFinite(
    const FormulaPtr& f, const std::vector<AutomataEvaluator*>& shard_evals,
    ParallelOptions parallel) const {
  obs::Count(obs::kShardQueries);
  int n = static_cast<int>(shard_evals.size());
  if (n <= 1 || parallel.serial()) {
    for (int i = 0; i < n; ++i) {
      STRQ_ASSIGN_OR_RETURN(TrackAutomaton a, shard_evals[i]->Compile(f));
      if (!a.IsFinite()) {
        // An infinite shard language is a sublanguage of the union: the
        // union is already known infinite.
        if (i + 1 < n) obs::Count(obs::kShardEarlyExits, n - 1 - i);
        return false;
      }
    }
    return true;  // a finite union of finite languages
  }
  std::vector<Result<bool>> per(n, InternalError("unset"));
  ThreadPool::ParallelFor(parallel.num_threads, n, [&](int i) {
    Result<TrackAutomaton> a = shard_evals[i]->Compile(f);
    per[i] = a.ok() ? Result<bool>(a->IsFinite()) : Result<bool>(a.status());
  });
  for (int i = 0; i < n; ++i) {
    STRQ_ASSIGN_OR_RETURN(bool finite, std::move(per[i]));
    if (!finite) return false;
  }
  return true;
}

}  // namespace shard
}  // namespace strq
