#ifndef STRQ_SHARD_COORDINATOR_H_
#define STRQ_SHARD_COORDINATOR_H_

#include <memory>
#include <vector>

#include "base/thread_pool.h"
#include "eval/automata_eval.h"
#include "logic/ast.h"
#include "mta/atom_cache.h"
#include "plan/planner.h"
#include "shard/sharded_db.h"

namespace strq {
namespace shard {

// Compiles one query against every shard of a ShardedDatabase and recombines
// the per-shard answer automata in the merge store.
//
// The whole scheme rests on one identity: for the formulas Distributable()
// accepts, the answer language over a database D = D₁ ⊎ … ⊎ Dₙ is exactly
// the union of the per-shard answer languages, Q[D] = ⋃ᵢ Q[Dᵢ]. Because
// every TrackAutomaton is a canonical minimal DFA interned by language, the
// merged automaton is THE canonical automaton of Q[D] — byte-identical, same
// merge-store id, no matter how many shards contributed or in what order
// their tuples were partitioned. That is the shard-count invariance the
// serving layer and the differential fuzz gate on.
//
// The deciders exploit the same identity without materializing the union:
// a sentence is true on D iff it is true on SOME shard (⋃ of 0-ary
// languages is the logical OR), and an answer is finite on D iff it is
// finite on EVERY shard — so both scan shards in order and stop at the
// first shard that fixes the verdict (shard.early_exits counts the shards
// never examined). In parallel mode all shards compile concurrently on the
// ThreadPool and the verdicts are combined in shard order, first-error-wins,
// exactly as UnionOfCQsSafe combines its disjuncts.
//
// Stateless apart from configuration; safe to share across sessions (the
// per-call evaluators carry all snapshot state).
class Coordinator {
 public:
  // `merge_cache`/`merge_planner` are the merge stack's: merged answers are
  // interned in merge_cache->store() and their actual sizes feed
  // merge_planner->RecordActual (per-shard actuals reach the per-shard
  // planners through the shard evaluators' own Compile paths).
  Coordinator(std::shared_ptr<AtomCache> merge_cache,
              std::shared_ptr<plan::Planner> merge_planner);

  // Is Q[D₁ ⊎ … ⊎ Dₙ] = ⋃ᵢ Q[Dᵢ] guaranteed for this formula? True iff
  //  * it mentions at least one database relation (otherwise per-shard
  //    evaluation is pure waste — the merge stack answers it directly),
  //  * it is adom-free: no kAdom predicate and no restricted quantifier
  //    range (a shard's active domain is not the database's), and
  //  * every relation occurrence sits on a ∪-distributive path: no Not,
  //    Implies-antecedent, Iff or Forall above it, and no And with relation
  //    occurrences on BOTH sides (∧ distributes over ⋃ only when one side
  //    is the same on every shard; ∨ and ∃ distribute on both).
  // Everything else falls back to the merge stack — same answers, one
  // compile instead of N.
  static bool Distributable(const FormulaPtr& f);

  // Compiles `f` on every shard evaluator and folds the answers, in shard
  // order, with the merge store's interned Union. `merge_db` is the pinned
  // merge snapshot (RecordActual context). In parallel mode the per-shard
  // compiles run concurrently; the fold order never changes.
  Result<TrackAutomaton> CompileMerged(
      const FormulaPtr& f, const std::vector<AutomataEvaluator*>& shard_evals,
      const Database* merge_db, ParallelOptions parallel) const;

  // Truth of a sentence over the union: true iff true on some shard.
  // Serial mode stops at the first true shard.
  Result<bool> MergedTruth(const FormulaPtr& f,
                           const std::vector<AutomataEvaluator*>& shard_evals,
                           ParallelOptions parallel) const;

  // Finiteness (state-safety) over the union: finite iff finite on every
  // shard. Serial mode stops at the first infinite shard.
  Result<bool> MergedIsFinite(
      const FormulaPtr& f, const std::vector<AutomataEvaluator*>& shard_evals,
      ParallelOptions parallel) const;

  const AutomatonStore& merge_store() const { return merge_cache_->store(); }

 private:
  // Re-interns a per-shard answer in the merge store (no-op when it already
  // lives there). Canonical minimization makes this pure re-interning: the
  // language, and therefore the resulting id, is unchanged.
  Result<TrackAutomaton> Adopt(const TrackAutomaton& a) const;

  std::shared_ptr<AtomCache> merge_cache_;
  std::shared_ptr<plan::Planner> merge_planner_;
};

}  // namespace shard
}  // namespace strq

#endif  // STRQ_SHARD_COORDINATOR_H_
