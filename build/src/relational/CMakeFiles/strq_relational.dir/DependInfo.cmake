
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/relational/algebra.cc" "src/relational/CMakeFiles/strq_relational.dir/algebra.cc.o" "gcc" "src/relational/CMakeFiles/strq_relational.dir/algebra.cc.o.d"
  "/root/repo/src/relational/database.cc" "src/relational/CMakeFiles/strq_relational.dir/database.cc.o" "gcc" "src/relational/CMakeFiles/strq_relational.dir/database.cc.o.d"
  "/root/repo/src/relational/tsv.cc" "src/relational/CMakeFiles/strq_relational.dir/tsv.cc.o" "gcc" "src/relational/CMakeFiles/strq_relational.dir/tsv.cc.o.d"
  "/root/repo/src/relational/width.cc" "src/relational/CMakeFiles/strq_relational.dir/width.cc.o" "gcc" "src/relational/CMakeFiles/strq_relational.dir/width.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/logic/CMakeFiles/strq_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/strq_base.dir/DependInfo.cmake"
  "/root/repo/build/src/automata/CMakeFiles/strq_automata.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
