file(REMOVE_RECURSE
  "CMakeFiles/strq_relational.dir/algebra.cc.o"
  "CMakeFiles/strq_relational.dir/algebra.cc.o.d"
  "CMakeFiles/strq_relational.dir/database.cc.o"
  "CMakeFiles/strq_relational.dir/database.cc.o.d"
  "CMakeFiles/strq_relational.dir/tsv.cc.o"
  "CMakeFiles/strq_relational.dir/tsv.cc.o.d"
  "CMakeFiles/strq_relational.dir/width.cc.o"
  "CMakeFiles/strq_relational.dir/width.cc.o.d"
  "libstrq_relational.a"
  "libstrq_relational.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strq_relational.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
