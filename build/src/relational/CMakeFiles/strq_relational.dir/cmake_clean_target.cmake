file(REMOVE_RECURSE
  "libstrq_relational.a"
)
