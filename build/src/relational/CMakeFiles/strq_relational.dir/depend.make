# Empty dependencies file for strq_relational.
# This may be replaced when dependencies are built.
