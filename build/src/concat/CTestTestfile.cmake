# CMake generated Testfile for 
# Source directory: /root/repo/src/concat
# Build directory: /root/repo/build/src/concat
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
