file(REMOVE_RECURSE
  "libstrq_concat.a"
)
