file(REMOVE_RECURSE
  "CMakeFiles/strq_concat.dir/concat_eval.cc.o"
  "CMakeFiles/strq_concat.dir/concat_eval.cc.o.d"
  "libstrq_concat.a"
  "libstrq_concat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strq_concat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
