# Empty compiler generated dependencies file for strq_concat.
# This may be replaced when dependencies are built.
