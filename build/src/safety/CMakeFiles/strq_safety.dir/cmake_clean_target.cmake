file(REMOVE_RECURSE
  "libstrq_safety.a"
)
