# Empty compiler generated dependencies file for strq_safety.
# This may be replaced when dependencies are built.
