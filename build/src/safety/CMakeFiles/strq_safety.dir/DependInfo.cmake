
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/safety/query_safety.cc" "src/safety/CMakeFiles/strq_safety.dir/query_safety.cc.o" "gcc" "src/safety/CMakeFiles/strq_safety.dir/query_safety.cc.o.d"
  "/root/repo/src/safety/range_restriction.cc" "src/safety/CMakeFiles/strq_safety.dir/range_restriction.cc.o" "gcc" "src/safety/CMakeFiles/strq_safety.dir/range_restriction.cc.o.d"
  "/root/repo/src/safety/safe_translation.cc" "src/safety/CMakeFiles/strq_safety.dir/safe_translation.cc.o" "gcc" "src/safety/CMakeFiles/strq_safety.dir/safe_translation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/strq_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/strq_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/logic/CMakeFiles/strq_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/strq_base.dir/DependInfo.cmake"
  "/root/repo/build/src/mta/CMakeFiles/strq_mta.dir/DependInfo.cmake"
  "/root/repo/build/src/automata/CMakeFiles/strq_automata.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
