file(REMOVE_RECURSE
  "CMakeFiles/strq_safety.dir/query_safety.cc.o"
  "CMakeFiles/strq_safety.dir/query_safety.cc.o.d"
  "CMakeFiles/strq_safety.dir/range_restriction.cc.o"
  "CMakeFiles/strq_safety.dir/range_restriction.cc.o.d"
  "CMakeFiles/strq_safety.dir/safe_translation.cc.o"
  "CMakeFiles/strq_safety.dir/safe_translation.cc.o.d"
  "libstrq_safety.a"
  "libstrq_safety.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strq_safety.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
