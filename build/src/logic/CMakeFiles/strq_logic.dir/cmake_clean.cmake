file(REMOVE_RECURSE
  "CMakeFiles/strq_logic.dir/ast.cc.o"
  "CMakeFiles/strq_logic.dir/ast.cc.o.d"
  "CMakeFiles/strq_logic.dir/parser.cc.o"
  "CMakeFiles/strq_logic.dir/parser.cc.o.d"
  "CMakeFiles/strq_logic.dir/signature.cc.o"
  "CMakeFiles/strq_logic.dir/signature.cc.o.d"
  "CMakeFiles/strq_logic.dir/simplify.cc.o"
  "CMakeFiles/strq_logic.dir/simplify.cc.o.d"
  "libstrq_logic.a"
  "libstrq_logic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strq_logic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
