# Empty dependencies file for strq_logic.
# This may be replaced when dependencies are built.
