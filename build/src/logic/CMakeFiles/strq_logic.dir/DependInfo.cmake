
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/logic/ast.cc" "src/logic/CMakeFiles/strq_logic.dir/ast.cc.o" "gcc" "src/logic/CMakeFiles/strq_logic.dir/ast.cc.o.d"
  "/root/repo/src/logic/parser.cc" "src/logic/CMakeFiles/strq_logic.dir/parser.cc.o" "gcc" "src/logic/CMakeFiles/strq_logic.dir/parser.cc.o.d"
  "/root/repo/src/logic/signature.cc" "src/logic/CMakeFiles/strq_logic.dir/signature.cc.o" "gcc" "src/logic/CMakeFiles/strq_logic.dir/signature.cc.o.d"
  "/root/repo/src/logic/simplify.cc" "src/logic/CMakeFiles/strq_logic.dir/simplify.cc.o" "gcc" "src/logic/CMakeFiles/strq_logic.dir/simplify.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/automata/CMakeFiles/strq_automata.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/strq_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
