file(REMOVE_RECURSE
  "libstrq_logic.a"
)
