file(REMOVE_RECURSE
  "libstrq_base.a"
)
