file(REMOVE_RECURSE
  "CMakeFiles/strq_base.dir/alphabet.cc.o"
  "CMakeFiles/strq_base.dir/alphabet.cc.o.d"
  "CMakeFiles/strq_base.dir/rng.cc.o"
  "CMakeFiles/strq_base.dir/rng.cc.o.d"
  "CMakeFiles/strq_base.dir/status.cc.o"
  "CMakeFiles/strq_base.dir/status.cc.o.d"
  "CMakeFiles/strq_base.dir/string_ops.cc.o"
  "CMakeFiles/strq_base.dir/string_ops.cc.o.d"
  "libstrq_base.a"
  "libstrq_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strq_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
