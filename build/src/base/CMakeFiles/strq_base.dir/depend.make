# Empty dependencies file for strq_base.
# This may be replaced when dependencies are built.
