file(REMOVE_RECURSE
  "libstrq_mta.a"
)
