# Empty compiler generated dependencies file for strq_mta.
# This may be replaced when dependencies are built.
