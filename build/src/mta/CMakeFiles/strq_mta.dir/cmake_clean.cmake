file(REMOVE_RECURSE
  "CMakeFiles/strq_mta.dir/atoms.cc.o"
  "CMakeFiles/strq_mta.dir/atoms.cc.o.d"
  "CMakeFiles/strq_mta.dir/conv.cc.o"
  "CMakeFiles/strq_mta.dir/conv.cc.o.d"
  "CMakeFiles/strq_mta.dir/track_automaton.cc.o"
  "CMakeFiles/strq_mta.dir/track_automaton.cc.o.d"
  "libstrq_mta.a"
  "libstrq_mta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strq_mta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
