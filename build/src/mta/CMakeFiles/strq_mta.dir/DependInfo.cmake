
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mta/atoms.cc" "src/mta/CMakeFiles/strq_mta.dir/atoms.cc.o" "gcc" "src/mta/CMakeFiles/strq_mta.dir/atoms.cc.o.d"
  "/root/repo/src/mta/conv.cc" "src/mta/CMakeFiles/strq_mta.dir/conv.cc.o" "gcc" "src/mta/CMakeFiles/strq_mta.dir/conv.cc.o.d"
  "/root/repo/src/mta/track_automaton.cc" "src/mta/CMakeFiles/strq_mta.dir/track_automaton.cc.o" "gcc" "src/mta/CMakeFiles/strq_mta.dir/track_automaton.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/automata/CMakeFiles/strq_automata.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/strq_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
