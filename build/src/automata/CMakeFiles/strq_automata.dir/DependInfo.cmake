
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/automata/dfa.cc" "src/automata/CMakeFiles/strq_automata.dir/dfa.cc.o" "gcc" "src/automata/CMakeFiles/strq_automata.dir/dfa.cc.o.d"
  "/root/repo/src/automata/like.cc" "src/automata/CMakeFiles/strq_automata.dir/like.cc.o" "gcc" "src/automata/CMakeFiles/strq_automata.dir/like.cc.o.d"
  "/root/repo/src/automata/nfa.cc" "src/automata/CMakeFiles/strq_automata.dir/nfa.cc.o" "gcc" "src/automata/CMakeFiles/strq_automata.dir/nfa.cc.o.d"
  "/root/repo/src/automata/ops.cc" "src/automata/CMakeFiles/strq_automata.dir/ops.cc.o" "gcc" "src/automata/CMakeFiles/strq_automata.dir/ops.cc.o.d"
  "/root/repo/src/automata/regex.cc" "src/automata/CMakeFiles/strq_automata.dir/regex.cc.o" "gcc" "src/automata/CMakeFiles/strq_automata.dir/regex.cc.o.d"
  "/root/repo/src/automata/regex_from_dfa.cc" "src/automata/CMakeFiles/strq_automata.dir/regex_from_dfa.cc.o" "gcc" "src/automata/CMakeFiles/strq_automata.dir/regex_from_dfa.cc.o.d"
  "/root/repo/src/automata/starfree.cc" "src/automata/CMakeFiles/strq_automata.dir/starfree.cc.o" "gcc" "src/automata/CMakeFiles/strq_automata.dir/starfree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/strq_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
