file(REMOVE_RECURSE
  "CMakeFiles/strq_automata.dir/dfa.cc.o"
  "CMakeFiles/strq_automata.dir/dfa.cc.o.d"
  "CMakeFiles/strq_automata.dir/like.cc.o"
  "CMakeFiles/strq_automata.dir/like.cc.o.d"
  "CMakeFiles/strq_automata.dir/nfa.cc.o"
  "CMakeFiles/strq_automata.dir/nfa.cc.o.d"
  "CMakeFiles/strq_automata.dir/ops.cc.o"
  "CMakeFiles/strq_automata.dir/ops.cc.o.d"
  "CMakeFiles/strq_automata.dir/regex.cc.o"
  "CMakeFiles/strq_automata.dir/regex.cc.o.d"
  "CMakeFiles/strq_automata.dir/regex_from_dfa.cc.o"
  "CMakeFiles/strq_automata.dir/regex_from_dfa.cc.o.d"
  "CMakeFiles/strq_automata.dir/starfree.cc.o"
  "CMakeFiles/strq_automata.dir/starfree.cc.o.d"
  "libstrq_automata.a"
  "libstrq_automata.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strq_automata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
