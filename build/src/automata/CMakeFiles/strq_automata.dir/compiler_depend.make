# Empty compiler generated dependencies file for strq_automata.
# This may be replaced when dependencies are built.
