file(REMOVE_RECURSE
  "libstrq_automata.a"
)
