
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/games/ef_game.cc" "src/games/CMakeFiles/strq_games.dir/ef_game.cc.o" "gcc" "src/games/CMakeFiles/strq_games.dir/ef_game.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/strq_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
