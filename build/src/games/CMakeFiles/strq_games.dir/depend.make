# Empty dependencies file for strq_games.
# This may be replaced when dependencies are built.
