file(REMOVE_RECURSE
  "libstrq_games.a"
)
