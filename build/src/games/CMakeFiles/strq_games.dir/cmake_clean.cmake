file(REMOVE_RECURSE
  "CMakeFiles/strq_games.dir/ef_game.cc.o"
  "CMakeFiles/strq_games.dir/ef_game.cc.o.d"
  "libstrq_games.a"
  "libstrq_games.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strq_games.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
