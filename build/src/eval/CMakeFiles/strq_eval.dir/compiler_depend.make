# Empty compiler generated dependencies file for strq_eval.
# This may be replaced when dependencies are built.
