file(REMOVE_RECURSE
  "libstrq_eval.a"
)
