file(REMOVE_RECURSE
  "CMakeFiles/strq_eval.dir/algebra_eval.cc.o"
  "CMakeFiles/strq_eval.dir/algebra_eval.cc.o.d"
  "CMakeFiles/strq_eval.dir/automata_eval.cc.o"
  "CMakeFiles/strq_eval.dir/automata_eval.cc.o.d"
  "CMakeFiles/strq_eval.dir/restricted_eval.cc.o"
  "CMakeFiles/strq_eval.dir/restricted_eval.cc.o.d"
  "libstrq_eval.a"
  "libstrq_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strq_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
