file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_inclusions.dir/bench_fig1_inclusions.cc.o"
  "CMakeFiles/bench_fig1_inclusions.dir/bench_fig1_inclusions.cc.o.d"
  "bench_fig1_inclusions"
  "bench_fig1_inclusions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_inclusions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
