# Empty dependencies file for bench_fig1_inclusions.
# This may be replaced when dependencies are built.
