file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_insert.dir/bench_ext_insert.cc.o"
  "CMakeFiles/bench_ext_insert.dir/bench_ext_insert.cc.o.d"
  "bench_ext_insert"
  "bench_ext_insert.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_insert.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
