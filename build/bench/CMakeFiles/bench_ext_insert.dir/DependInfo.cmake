
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ext_insert.cc" "bench/CMakeFiles/bench_ext_insert.dir/bench_ext_insert.cc.o" "gcc" "bench/CMakeFiles/bench_ext_insert.dir/bench_ext_insert.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/concat/CMakeFiles/strq_concat.dir/DependInfo.cmake"
  "/root/repo/build/src/safety/CMakeFiles/strq_safety.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/strq_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/games/CMakeFiles/strq_games.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/strq_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/logic/CMakeFiles/strq_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/mta/CMakeFiles/strq_mta.dir/DependInfo.cmake"
  "/root/repo/build/src/automata/CMakeFiles/strq_automata.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/strq_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
