# Empty compiler generated dependencies file for bench_ext_insert.
# This may be replaced when dependencies are built.
