file(REMOVE_RECURSE
  "CMakeFiles/bench_thm3_safety.dir/bench_thm3_safety.cc.o"
  "CMakeFiles/bench_thm3_safety.dir/bench_thm3_safety.cc.o.d"
  "bench_thm3_safety"
  "bench_thm3_safety.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm3_safety.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
