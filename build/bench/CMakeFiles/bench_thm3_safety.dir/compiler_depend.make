# Empty compiler generated dependencies file for bench_thm3_safety.
# This may be replaced when dependencies are built.
