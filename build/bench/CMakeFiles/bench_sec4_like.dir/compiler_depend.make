# Empty compiler generated dependencies file for bench_sec4_like.
# This may be replaced when dependencies are built.
