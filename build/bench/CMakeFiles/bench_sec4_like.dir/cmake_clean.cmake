file(REMOVE_RECURSE
  "CMakeFiles/bench_sec4_like.dir/bench_sec4_like.cc.o"
  "CMakeFiles/bench_sec4_like.dir/bench_sec4_like.cc.o.d"
  "bench_sec4_like"
  "bench_sec4_like.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec4_like.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
