file(REMOVE_RECURSE
  "CMakeFiles/bench_thm4_algebra.dir/bench_thm4_algebra.cc.o"
  "CMakeFiles/bench_thm4_algebra.dir/bench_thm4_algebra.cc.o.d"
  "bench_thm4_algebra"
  "bench_thm4_algebra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm4_algebra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
