file(REMOVE_RECURSE
  "CMakeFiles/bench_thm2_slen.dir/bench_thm2_slen.cc.o"
  "CMakeFiles/bench_thm2_slen.dir/bench_thm2_slen.cc.o.d"
  "bench_thm2_slen"
  "bench_thm2_slen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm2_slen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
