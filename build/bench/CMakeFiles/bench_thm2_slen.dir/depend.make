# Empty dependencies file for bench_thm2_slen.
# This may be replaced when dependencies are built.
