# Empty dependencies file for bench_fig2_summary.
# This may be replaced when dependencies are built.
