# Empty compiler generated dependencies file for bench_prop5_3col.
# This may be replaced when dependencies are built.
