file(REMOVE_RECURSE
  "CMakeFiles/bench_prop5_3col.dir/bench_prop5_3col.cc.o"
  "CMakeFiles/bench_prop5_3col.dir/bench_prop5_3col.cc.o.d"
  "bench_prop5_3col"
  "bench_prop5_3col.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_prop5_3col.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
