file(REMOVE_RECURSE
  "CMakeFiles/bench_cor6_cqsafety.dir/bench_cor6_cqsafety.cc.o"
  "CMakeFiles/bench_cor6_cqsafety.dir/bench_cor6_cqsafety.cc.o.d"
  "bench_cor6_cqsafety"
  "bench_cor6_cqsafety.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cor6_cqsafety.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
