# Empty compiler generated dependencies file for bench_cor6_cqsafety.
# This may be replaced when dependencies are built.
