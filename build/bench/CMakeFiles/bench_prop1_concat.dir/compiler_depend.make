# Empty compiler generated dependencies file for bench_prop1_concat.
# This may be replaced when dependencies are built.
