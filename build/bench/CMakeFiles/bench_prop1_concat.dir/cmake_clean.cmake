file(REMOVE_RECURSE
  "CMakeFiles/bench_prop1_concat.dir/bench_prop1_concat.cc.o"
  "CMakeFiles/bench_prop1_concat.dir/bench_prop1_concat.cc.o.d"
  "bench_prop1_concat"
  "bench_prop1_concat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_prop1_concat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
