# Empty dependencies file for bench_prop6_finiteness.
# This may be replaced when dependencies are built.
