file(REMOVE_RECURSE
  "CMakeFiles/bench_prop6_finiteness.dir/bench_prop6_finiteness.cc.o"
  "CMakeFiles/bench_prop6_finiteness.dir/bench_prop6_finiteness.cc.o.d"
  "bench_prop6_finiteness"
  "bench_prop6_finiteness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_prop6_finiteness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
