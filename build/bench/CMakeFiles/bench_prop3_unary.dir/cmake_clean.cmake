file(REMOVE_RECURSE
  "CMakeFiles/bench_prop3_unary.dir/bench_prop3_unary.cc.o"
  "CMakeFiles/bench_prop3_unary.dir/bench_prop3_unary.cc.o.d"
  "bench_prop3_unary"
  "bench_prop3_unary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_prop3_unary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
