# Empty compiler generated dependencies file for bench_prop3_unary.
# This may be replaced when dependencies are built.
