file(REMOVE_RECURSE
  "CMakeFiles/bench_prop7_statesafety.dir/bench_prop7_statesafety.cc.o"
  "CMakeFiles/bench_prop7_statesafety.dir/bench_prop7_statesafety.cc.o.d"
  "bench_prop7_statesafety"
  "bench_prop7_statesafety.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_prop7_statesafety.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
