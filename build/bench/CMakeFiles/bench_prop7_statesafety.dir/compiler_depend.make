# Empty compiler generated dependencies file for bench_prop7_statesafety.
# This may be replaced when dependencies are built.
