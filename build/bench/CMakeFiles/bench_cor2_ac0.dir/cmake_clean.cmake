file(REMOVE_RECURSE
  "CMakeFiles/bench_cor2_ac0.dir/bench_cor2_ac0.cc.o"
  "CMakeFiles/bench_cor2_ac0.dir/bench_cor2_ac0.cc.o.d"
  "bench_cor2_ac0"
  "bench_cor2_ac0.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cor2_ac0.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
