# Empty dependencies file for bench_cor2_ac0.
# This may be replaced when dependencies are built.
