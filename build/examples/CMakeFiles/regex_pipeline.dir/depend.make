# Empty dependencies file for regex_pipeline.
# This may be replaced when dependencies are built.
