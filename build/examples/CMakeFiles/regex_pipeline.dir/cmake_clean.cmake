file(REMOVE_RECURSE
  "CMakeFiles/regex_pipeline.dir/regex_pipeline.cpp.o"
  "CMakeFiles/regex_pipeline.dir/regex_pipeline.cpp.o.d"
  "regex_pipeline"
  "regex_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regex_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
