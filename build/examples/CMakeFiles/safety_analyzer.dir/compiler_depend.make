# Empty compiler generated dependencies file for safety_analyzer.
# This may be replaced when dependencies are built.
