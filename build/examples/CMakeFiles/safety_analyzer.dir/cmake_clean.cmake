file(REMOVE_RECURSE
  "CMakeFiles/safety_analyzer.dir/safety_analyzer.cpp.o"
  "CMakeFiles/safety_analyzer.dir/safety_analyzer.cpp.o.d"
  "safety_analyzer"
  "safety_analyzer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/safety_analyzer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
