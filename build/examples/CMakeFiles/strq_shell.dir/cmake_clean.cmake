file(REMOVE_RECURSE
  "CMakeFiles/strq_shell.dir/strq_shell.cpp.o"
  "CMakeFiles/strq_shell.dir/strq_shell.cpp.o.d"
  "strq_shell"
  "strq_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strq_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
