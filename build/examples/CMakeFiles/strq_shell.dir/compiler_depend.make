# Empty compiler generated dependencies file for strq_shell.
# This may be replaced when dependencies are built.
