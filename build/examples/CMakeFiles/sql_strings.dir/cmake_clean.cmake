file(REMOVE_RECURSE
  "CMakeFiles/sql_strings.dir/sql_strings.cpp.o"
  "CMakeFiles/sql_strings.dir/sql_strings.cpp.o.d"
  "sql_strings"
  "sql_strings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sql_strings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
