# Empty dependencies file for sql_strings.
# This may be replaced when dependencies are built.
