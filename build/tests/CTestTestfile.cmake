# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/base_test[1]_include.cmake")
include("/root/repo/build/tests/automata_test[1]_include.cmake")
include("/root/repo/build/tests/mta_test[1]_include.cmake")
include("/root/repo/build/tests/logic_test[1]_include.cmake")
include("/root/repo/build/tests/relational_test[1]_include.cmake")
include("/root/repo/build/tests/eval_test[1]_include.cmake")
include("/root/repo/build/tests/safety_test[1]_include.cmake")
include("/root/repo/build/tests/games_test[1]_include.cmake")
include("/root/repo/build/tests/concat_test[1]_include.cmake")
include("/root/repo/build/tests/ext_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/laws_test[1]_include.cmake")
include("/root/repo/build/tests/paper_examples_test[1]_include.cmake")
