file(REMOVE_RECURSE
  "CMakeFiles/mta_test.dir/mta/abc_alphabet_test.cc.o"
  "CMakeFiles/mta_test.dir/mta/abc_alphabet_test.cc.o.d"
  "CMakeFiles/mta_test.dir/mta/atoms_test.cc.o"
  "CMakeFiles/mta_test.dir/mta/atoms_test.cc.o.d"
  "CMakeFiles/mta_test.dir/mta/conv_test.cc.o"
  "CMakeFiles/mta_test.dir/mta/conv_test.cc.o.d"
  "CMakeFiles/mta_test.dir/mta/track_automaton_test.cc.o"
  "CMakeFiles/mta_test.dir/mta/track_automaton_test.cc.o.d"
  "mta_test"
  "mta_test.pdb"
  "mta_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mta_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
