file(REMOVE_RECURSE
  "CMakeFiles/concat_test.dir/concat/concat_eval_test.cc.o"
  "CMakeFiles/concat_test.dir/concat/concat_eval_test.cc.o.d"
  "concat_test"
  "concat_test.pdb"
  "concat_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concat_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
