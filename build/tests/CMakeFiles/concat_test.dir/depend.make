# Empty dependencies file for concat_test.
# This may be replaced when dependencies are built.
