file(REMOVE_RECURSE
  "CMakeFiles/automata_test.dir/automata/dfa_test.cc.o"
  "CMakeFiles/automata_test.dir/automata/dfa_test.cc.o.d"
  "CMakeFiles/automata_test.dir/automata/like_test.cc.o"
  "CMakeFiles/automata_test.dir/automata/like_test.cc.o.d"
  "CMakeFiles/automata_test.dir/automata/nfa_test.cc.o"
  "CMakeFiles/automata_test.dir/automata/nfa_test.cc.o.d"
  "CMakeFiles/automata_test.dir/automata/ops_test.cc.o"
  "CMakeFiles/automata_test.dir/automata/ops_test.cc.o.d"
  "CMakeFiles/automata_test.dir/automata/regex_from_dfa_test.cc.o"
  "CMakeFiles/automata_test.dir/automata/regex_from_dfa_test.cc.o.d"
  "CMakeFiles/automata_test.dir/automata/regex_test.cc.o"
  "CMakeFiles/automata_test.dir/automata/regex_test.cc.o.d"
  "CMakeFiles/automata_test.dir/automata/starfree_test.cc.o"
  "CMakeFiles/automata_test.dir/automata/starfree_test.cc.o.d"
  "automata_test"
  "automata_test.pdb"
  "automata_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/automata_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
